#include "core/layered_minsum_fixed.hpp"

#include <algorithm>
#include <cmath>

#include "fault/fault_injector.hpp"
#include "util/saturate.hpp"

namespace ldpc {

// ---------------------------------------------------------------------------
// LayerRowKernel
// ---------------------------------------------------------------------------

LayerRowKernel::LayerRowKernel(FixedFormat format, std::int32_t scale_num,
                               std::int32_t scale_den)
    : format_(format), scale_num_(scale_num), scale_den_(scale_den) {
  validate(format_);
  LDPC_CHECK_MSG(scale_den_ > 0 && scale_num_ > 0 && scale_num_ <= scale_den_,
                 "min-sum scale must be a fraction in (0, 1], got "
                     << scale_num_ << "/" << scale_den_);
}

void LayerRowKernel::CheckState::reset() {
  // Sentinel: larger than any |Q| of any supported format (|min code| = 2^15).
  min1 = 1 << 20;
  min2 = 1 << 20;
  pos1 = 0;
  sign_product = false;
  count = 0;
}

void LayerRowKernel::CheckState::absorb(std::int32_t q, std::uint32_t pos) {
  const std::int32_t mag = q < 0 ? -q : q;
  sign_product ^= (q < 0);
  if (mag < min1) {
    min2 = min1;
    min1 = mag;
    pos1 = pos;
  } else if (mag < min2) {
    min2 = mag;
  }
  ++count;
}

std::int32_t LayerRowKernel::compute_q(std::int32_t p, std::int32_t r) const {
  if (stats_) return sat_sub_counted(p, r, format_.total_bits, stats_->q_clips);
  return sat_sub(p, r, format_.total_bits);
}

LayerRowKernel LayerRowKernel::offset_kernel(FixedFormat format,
                                             std::int32_t offset_code) {
  LDPC_CHECK_MSG(offset_code >= 0, "offset must be non-negative");
  LayerRowKernel k(format, 1, 1);
  k.offset_code_ = offset_code;
  return k;
}

std::int32_t LayerRowKernel::scale(std::int32_t magnitude) const {
  if (offset_code_ >= 0) return std::max(0, magnitude - offset_code_);
  // The paper's 0.75 is realized as (x>>1)+(x>>2) in a multiplier-free
  // datapath; other ratios (ablation sweeps) use truncating num/den.
  if (scale_num_ == 3 && scale_den_ == 4) return scale_three_quarters(magnitude);
  return static_cast<std::int32_t>(
      static_cast<std::int64_t>(magnitude) * scale_num_ / scale_den_);
}

std::int32_t LayerRowKernel::compute_r_new(const CheckState& st, std::int32_t q,
                                           std::uint32_t pos) const {
  // A degree-1 check row (random_qc configurations, punctured codes) has no
  // extrinsic input for its single edge: the check constrains nothing beyond
  // the bit itself, so R' = 0 — the min1/min2 state holds only the sentinel
  // and this edge's own magnitude, neither of which is a valid message.
  if (st.count < 2) {
    if (degenerate_) ++(*degenerate_);
    return 0;
  }
  const std::int32_t mag = scale((pos == st.pos1) ? st.min2 : st.min1);
  const bool negative = st.sign_product ^ (q < 0);
  // Magnitudes fit the format by construction (|Q| <= max|code|, scaled down),
  // except |min code| itself, which saturates to the positive rail.
  if (stats_)
    return sat_clamp_counted(negative ? -mag : mag, format_.total_bits,
                             stats_->r_clips);
  return sat_clamp(negative ? -mag : mag, format_.total_bits);
}

std::int32_t LayerRowKernel::compute_p_new(std::int32_t q, std::int32_t r_new) const {
  if (stats_)
    return sat_add_counted(q, r_new, format_.total_bits, stats_->p_clips);
  return sat_add(q, r_new, format_.total_bits);
}

// ---------------------------------------------------------------------------
// LayeredMinSumFixedDecoder
// ---------------------------------------------------------------------------

LayeredMinSumFixedDecoder::LayeredMinSumFixedDecoder(const QCLdpcCode& code,
                                                     DecoderOptions options,
                                                     FixedFormat format)
    : code_(code), options_(options), kernel_(format) {
  LDPC_CHECK(options_.max_iterations > 0);
  // Ablation sweeps may pass non-0.75 scales via DecoderOptions::scale; map
  // the common ones onto exact fractions to stay multiplier-free.
  if (options_.scale != 0.75F) {
    const auto num = static_cast<std::int32_t>(options_.scale * 16.0F + 0.5F);
    kernel_ = LayerRowKernel(format, num, 16);
  }
  init_scratch();
}

LayeredMinSumFixedDecoder::LayeredMinSumFixedDecoder(const QCLdpcCode& code,
                                                     DecoderOptions options,
                                                     LayerRowKernel kernel,
                                                     std::string label)
    : code_(code),
      options_(options),
      kernel_(kernel),
      label_(std::move(label)) {
  LDPC_CHECK(options_.max_iterations > 0);
  init_scratch();
}

void LayeredMinSumFixedDecoder::init_scratch() {
  posterior_.resize(code_.n());
  check_msg_.resize(code_.base().nonzero_blocks() * static_cast<std::size_t>(code_.z()));
  quant_scratch_.resize(code_.n());
  std::size_t max_deg = 0;
  for (const auto& layer : code_.layers()) max_deg = std::max(max_deg, layer.size());
  q_row_.reserve(max_deg);
}

DecodeResult LayeredMinSumFixedDecoder::decode(std::span<const float> llr) {
  LDPC_CHECK(llr.size() == code_.n());
  saturation_.quantizer_clips = 0;
  if (options_.count_saturation) {
    for (std::size_t v = 0; v < llr.size(); ++v)
      quant_scratch_[v] = format().quantize(llr[v], saturation_.quantizer_clips);
  } else {
    for (std::size_t v = 0; v < llr.size(); ++v)
      quant_scratch_[v] = format().quantize(llr[v]);
  }
  return decode_quantized(quant_scratch_);
}

DecodeResult LayeredMinSumFixedDecoder::decode_quantized(
    std::span<const std::int32_t> channel_codes) {
  LDPC_CHECK(channel_codes.size() == code_.n());
  const auto z = static_cast<std::size_t>(code_.z());
  const int w = kernel_.format().total_bits;

  std::copy(channel_codes.begin(), channel_codes.end(), posterior_.begin());
  std::fill(check_msg_.begin(), check_msg_.end(), 0);

  saturation_.datapath_clips = 0;
  saturation_.q_clips = 0;
  saturation_.r_clips = 0;
  saturation_.p_clips = 0;
  saturation_.degenerate_checks = 0;
  kernel_.track_saturation(options_.count_saturation ? &saturation_ : nullptr);
  kernel_.track_degenerate(&saturation_.degenerate_checks);
  FaultInjector* const injector =
      (options_.fault_injector && options_.fault_injector->enabled())
          ? options_.fault_injector
          : nullptr;
  const long long injections_before = injector ? injector->injections() : 0;
  WatchdogState watchdog(options_.watchdog);
  bool watchdog_fired = false;
  bool cancelled = false;

  DecodeResult result;
  result.hard_bits.resize(code_.n());
  BitVec previous_hard;
  if (options_.observer) previous_hard.resize(code_.n());

  std::vector<std::int32_t>& q = q_row_;  // the Q_array of Fig. 5

  for (std::size_t iter = 1; iter <= options_.max_iterations; ++iter) {
    result.iterations = iter;

    for (const auto& layer : code_.layers()) {
      // Cooperative cancellation poll: the posterior memory is consistent at
      // every layer boundary, so bailing here still yields meaningful hard
      // decisions (and the output parity recheck below stays honest).
      if (cancel_ && cancel_->expired()) {
        cancelled = true;
        break;
      }
      const std::size_t deg = layer.size();
      q.resize(deg);
      for (std::size_t row = 0; row < z; ++row) {
        LayerRowKernel::CheckState st;
        st.reset();
        // Stage 1 (core 1): Q = P - R, min1/min2/pos/sign accumulation.
        for (std::size_t j = 0; j < deg; ++j) {
          const auto& blk = layer[j];
          const std::size_t var = blk.block_col * z + (row + blk.shift) % z;
          std::int32_t p = posterior_[var];
          std::int32_t r = check_msg_[blk.r_slot * z + row];
          if (injector) {
            p = injector->corrupt_value(FaultSite::kSramP, p, w);
            r = injector->corrupt_value(FaultSite::kSramR, r, w);
          }
          q[j] = kernel_.compute_q(p, r);
          st.absorb(q[j], static_cast<std::uint32_t>(j));
        }
        // Upsets in the held core-1 state registers (row == hardware lane).
        if (injector) {
          st.min1 = injector->corrupt_magnitude(FaultSite::kCoreMin1, st.min1, w);
          st.min2 = injector->corrupt_magnitude(FaultSite::kCoreMin2, st.min2, w);
          st.sign_product =
              injector->corrupt_flag(FaultSite::kCoreSign, st.sign_product);
        }
        // Stage 2 (core 2): R' and P' write-back.
        for (std::size_t j = 0; j < deg; ++j) {
          const auto& blk = layer[j];
          const std::size_t var = blk.block_col * z + (row + blk.shift) % z;
          const std::int32_t r_new =
              kernel_.compute_r_new(st, q[j], static_cast<std::uint32_t>(j));
          check_msg_[blk.r_slot * z + row] = r_new;
          posterior_[var] = kernel_.compute_p_new(q[j], r_new);
        }
      }
    }

    for (std::size_t v = 0; v < code_.n(); ++v)
      result.hard_bits.set(v, posterior_[v] < 0);
    // One syndrome evaluation serves the observer, early termination and
    // the watchdog (parity_ok == zero syndrome weight); when none of the
    // weight consumers is active, early termination keeps the cheaper
    // short-circuiting parity walk.
    const bool want_weight =
        static_cast<bool>(options_.observer) || options_.watchdog.enabled();
    std::size_t weight = 0;
    if (want_weight) weight = code_.syndrome_weight(result.hard_bits);
    if (options_.observer) {
      IterationSnapshot snap;
      snap.iteration = iter;
      snap.syndrome_weight = weight;
      double sum = 0.0;
      for (const auto p : posterior_)
        sum += std::abs(static_cast<double>(kernel_.format().dequantize(p)));
      snap.mean_abs_llr = sum / static_cast<double>(code_.n());
      snap.flipped_bits = result.hard_bits.hamming_distance(previous_hard);
      snap.saturation_clips =
          saturation_.q_clips + saturation_.r_clips + saturation_.p_clips;
      previous_hard = result.hard_bits;
      options_.observer(snap);
    }
    if (options_.early_termination &&
        (want_weight ? weight == 0 : code_.parity_ok(result.hard_bits))) {
      result.converged = true;
      break;
    }
    if (cancelled) break;
    if (options_.watchdog.enabled() && watchdog.should_abort(weight)) {
      watchdog_fired = true;
      break;
    }
  }

  // Parity recheck on output: never report garbage as a codeword.
  if (!result.converged) result.converged = code_.parity_ok(result.hard_bits);
  saturation_.datapath_clips =
      saturation_.q_clips + saturation_.r_clips + saturation_.p_clips;
  if (injector)
    result.faults_injected =
        static_cast<std::size_t>(injector->injections() - injections_before);
  result.status = classify_exit(result.converged, watchdog_fired,
                                result.faults_injected, cancelled);
  return result;
}

}  // namespace ldpc
