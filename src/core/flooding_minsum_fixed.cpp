#include "core/flooding_minsum_fixed.hpp"

#include <algorithm>

#include "util/saturate.hpp"

namespace ldpc {

FloodingMinSumFixedDecoder::FloodingMinSumFixedDecoder(const QCLdpcCode& code,
                                                       DecoderOptions options,
                                                       FixedFormat format)
    : code_(code), options_(options), kernel_(format) {
  LDPC_CHECK(options_.max_iterations > 0);
  if (options_.scale != 0.75F) {
    const auto num = static_cast<std::int32_t>(options_.scale * 16.0F + 0.5F);
    kernel_ = LayerRowKernel(format, num, 16);
  }
  var_to_check_.resize(code_.num_edges());
  check_to_var_.resize(code_.num_edges());
}

DecodeResult FloodingMinSumFixedDecoder::decode(std::span<const float> llr) {
  LDPC_CHECK(llr.size() == code_.n());
  std::vector<std::int32_t> codes(llr.size());
  long long quant_clips = 0;
  if (options_.count_saturation) {
    for (std::size_t v = 0; v < llr.size(); ++v)
      codes[v] = kernel_.format().quantize(llr[v], quant_clips);
  } else {
    for (std::size_t v = 0; v < llr.size(); ++v)
      codes[v] = kernel_.format().quantize(llr[v]);
  }
  DecodeResult result = decode_quantized(codes);
  saturation_.quantizer_clips = quant_clips;
  return result;
}

DecodeResult FloodingMinSumFixedDecoder::decode_quantized(
    std::span<const std::int32_t> channel_codes) {
  LDPC_CHECK(channel_codes.size() == code_.n());
  const auto& checks = code_.check_adjacency();
  const auto& var_edges = code_.var_edges();
  const int w = kernel_.format().total_bits;

  for (std::size_t v = 0; v < code_.n(); ++v)
    for (std::uint32_t e : var_edges[v]) var_to_check_[e] = channel_codes[v];
  std::fill(check_to_var_.begin(), check_to_var_.end(), 0);

  DecodeResult result;
  result.hard_bits.resize(code_.n());
  saturation_ = SaturationStats{};
  kernel_.track_saturation(options_.count_saturation ? &saturation_ : nullptr);
  kernel_.track_degenerate(&saturation_.degenerate_checks);
  WatchdogState watchdog(options_.watchdog);
  bool watchdog_fired = false;

  for (std::size_t iter = 1; iter <= options_.max_iterations; ++iter) {
    result.iterations = iter;

    // Check phase: min1/min2/sign per row, scaled write-back (the CNU).
    for (std::size_t c = 0; c < checks.size(); ++c) {
      const std::size_t deg = checks[c].size();
      const std::size_t base = code_.edge_index(c, 0);
      LayerRowKernel::CheckState st;
      st.reset();
      for (std::size_t i = 0; i < deg; ++i)
        st.absorb(var_to_check_[base + i], static_cast<std::uint32_t>(i));
      for (std::size_t i = 0; i < deg; ++i)
        check_to_var_[base + i] = kernel_.compute_r_new(
            st, var_to_check_[base + i], static_cast<std::uint32_t>(i));
    }

    // Variable phase: saturating totals, extrinsic write-back (the VNU).
    if (options_.count_saturation) {
      for (std::size_t v = 0; v < code_.n(); ++v) {
        std::int64_t total = channel_codes[v];
        for (std::uint32_t e : var_edges[v]) total += check_to_var_[e];
        for (std::uint32_t e : var_edges[v])
          var_to_check_[e] = sat_clamp_counted(total - check_to_var_[e], w,
                                               saturation_.p_clips);
        result.hard_bits.set(v, total < 0);
      }
    } else {
      for (std::size_t v = 0; v < code_.n(); ++v) {
        std::int64_t total = channel_codes[v];
        for (std::uint32_t e : var_edges[v]) total += check_to_var_[e];
        for (std::uint32_t e : var_edges[v])
          var_to_check_[e] = sat_clamp(total - check_to_var_[e], w);
        result.hard_bits.set(v, total < 0);
      }
    }

    if (options_.early_termination && code_.parity_ok(result.hard_bits)) {
      result.converged = true;
      break;
    }
    if (options_.watchdog.enabled() &&
        watchdog.should_abort(code_.syndrome_weight(result.hard_bits))) {
      watchdog_fired = true;
      break;
    }
  }

  if (!result.converged) result.converged = code_.parity_ok(result.hard_bits);
  saturation_.datapath_clips =
      saturation_.q_clips + saturation_.r_clips + saturation_.p_clips;
  result.status = classify_exit(result.converged, watchdog_fired, 0);
  return result;
}

}  // namespace ldpc
