// Fixed-point layered scaled-min-sum decoder — the paper's Algorithm 1,
// bit-exact with the hardware datapaths in src/arch.
//
// Message representation follows Fig. 5: P and R are stored as
// `format.total_bits`-wide two's-complement codes (8 bits in the paper's
// architecture diagram, 6 in the Table II comparison row). The check-node
// magnitude update uses min1/min2/pos1/sign tracking — precisely what the
// core1 datapath computes into min1_array/min2_array/pos1_array/sign_array —
// and the 0.75 scaling is the shift-add (x>>1)+(x>>2) a hardware multiplier-
// free datapath performs (see scale_three_quarters in util/saturate.hpp).
//
// The cycle-accurate architecture simulators re-use this class's layer
// arithmetic through LayerRowKernel so that "decoded output of the hardware
// model == decoded output of the algorithm" is a checkable invariant rather
// than a coincidence.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"
#include "core/quant.hpp"

namespace ldpc {

/// The per-row arithmetic of Algorithm 1, factored out so the algorithmic
/// decoder and the hardware simulators execute the identical computation.
/// All values are sign-extended codes of `format` width.
class LayerRowKernel {
 public:
  LayerRowKernel(FixedFormat format, std::int32_t scale_num, std::int32_t scale_den);

  /// Default kernel: the paper's 0.75 scaling.
  explicit LayerRowKernel(FixedFormat format)
      : LayerRowKernel(format, 3, 4) {}

  /// Offset-min-sum kernel: magnitudes corrected by max(|m| - offset, 0)
  /// instead of scaling. `offset_code` is in quantized units. The datapath
  /// cost is one subtractor instead of the shift-add — the classic
  /// alternative to the paper's normalization (used for ablations).
  static LayerRowKernel offset_kernel(FixedFormat format, std::int32_t offset_code);

  FixedFormat format() const { return format_; }

  /// Correction-scheme parameters, exposed so the static range verifier can
  /// model exactly the arithmetic this kernel executes.
  std::int32_t scale_numerator() const { return scale_num_; }
  std::int32_t scale_denominator() const { return scale_den_; }
  /// Offset-min-sum correction in quantized units; < 0 when scaling is used.
  std::int32_t offset_code() const { return offset_code_; }

  /// Route saturation events into per-site counters of `stats` (nullptr
  /// disables counting; the arithmetic is identical either way): compute_q
  /// fills q_clips, compute_r_new r_clips, compute_p_new p_clips. The
  /// caller owns the aggregate datapath_clips rollup. Non-owning — the
  /// stats block must outlive every kernel call.
  void track_saturation(SaturationStats* stats) { stats_ = stats; }

  /// Route degenerate-row events (compute_r_new on a check row of degree
  /// < 2, where R' is forced to 0) into `counter`. Non-owning, may be null.
  void track_degenerate(long long* counter) { degenerate_ = counter; }

  /// Stage-1 state for one check row (what core 1 accumulates).
  struct CheckState {
    std::int32_t min1 = 0;   ///< smallest |Q|
    std::int32_t min2 = 0;   ///< second smallest |Q|
    std::uint32_t pos1 = 0;  ///< block index of min1
    bool sign_product = false;
    std::uint32_t count = 0;

    void reset();
    /// Absorb one Q message (block index `pos` within the layer).
    void absorb(std::int32_t q, std::uint32_t pos);
  };

  /// Q = P - R with saturation (stage 1 pre-processing).
  std::int32_t compute_q(std::int32_t p, std::int32_t r) const;

  /// New check message R' for block `pos` given the completed row state
  /// (stage 2): scaled min with the sign product excluding this edge.
  std::int32_t compute_r_new(const CheckState& st, std::int32_t q,
                             std::uint32_t pos) const;

  /// New posterior P' = Q + R' with saturation (stage 2).
  std::int32_t compute_p_new(std::int32_t q, std::int32_t r_new) const;

 private:
  std::int32_t scale(std::int32_t magnitude) const;

  FixedFormat format_;
  std::int32_t scale_num_;
  std::int32_t scale_den_;
  std::int32_t offset_code_ = -1;   ///< >= 0 selects offset correction
  SaturationStats* stats_ = nullptr;  ///< optional per-site clip counters
  long long* degenerate_ = nullptr; ///< optional degree<2 row counter
};

class LayeredMinSumFixedDecoder final : public Decoder {
 public:
  LayeredMinSumFixedDecoder(const QCLdpcCode& code, DecoderOptions options,
                            FixedFormat format = FixedFormat{});

  /// Custom-kernel variant (e.g. LayerRowKernel::offset_kernel) for
  /// correction-scheme ablations. `label` names the decoder in reports.
  LayeredMinSumFixedDecoder(const QCLdpcCode& code, DecoderOptions options,
                            LayerRowKernel kernel, std::string label);

  DecodeResult decode(std::span<const float> llr) override;
  std::size_t n() const override { return code_.n(); }
  std::size_t k() const override { return code_.k(); }
  std::string name() const override {
    return label_.empty() ? "layered-minsum-" + format().name() : label_;
  }

  std::string message_format() const override { return format().name(); }

  FixedFormat format() const { return kernel_.format(); }

  /// Decode from already-quantized channel codes; exposed so the hardware
  /// simulators and tests can drive the decoder bit-exactly.
  DecodeResult decode_quantized(std::span<const std::int32_t> channel_codes);

  /// Final posteriors of the last decode (codes), for quantization studies.
  const std::vector<std::int32_t>& posteriors() const { return posterior_; }

  /// Saturation accounting for the last decode (clip counts are zero unless
  /// DecoderOptions::count_saturation was set; degenerate_checks is always
  /// counted).
  SaturationStats saturation() const override { return saturation_; }

  /// Cooperative cancellation: the token is polled once per layer, so an
  /// expired deadline costs at most one layer of extra work before the
  /// decode exits with DecodeStatus::kDeadlineExpired.
  void set_cancel_token(const CancelToken* token) override { cancel_ = token; }

 private:
  void init_scratch();

  const QCLdpcCode& code_;
  DecoderOptions options_;
  LayerRowKernel kernel_;
  std::string label_;
  const CancelToken* cancel_ = nullptr;  ///< non-owning, may be null
  std::vector<std::int32_t> posterior_;  ///< P memory
  std::vector<std::int32_t> check_msg_;  ///< R memory, r_slot * z + row
  /// Reusable per-decode scratch, sized once per code so the hot path
  /// allocates nothing: decode()'s quantized channel codes and the
  /// per-row Q_array of Fig. 5 (capacity = widest layer).
  std::vector<std::int32_t> quant_scratch_;
  std::vector<std::int32_t> q_row_;
  SaturationStats saturation_;
};

}  // namespace ldpc
