#include "core/gallager_b.hpp"

#include <algorithm>

namespace ldpc {

GallagerBDecoder::GallagerBDecoder(const QCLdpcCode& code, DecoderOptions options,
                                   std::size_t threshold)
    : code_(code), options_(options), threshold_(threshold) {
  LDPC_CHECK(options_.max_iterations > 0);
  var_to_check_.resize(code_.num_edges());
  check_to_var_.resize(code_.num_edges());
}

DecodeResult GallagerBDecoder::decode(std::span<const float> llr) {
  LDPC_CHECK(llr.size() == code_.n());
  BitVec received(code_.n());
  for (std::size_t v = 0; v < code_.n(); ++v) received.set(v, llr[v] < 0.0F);
  return decode_hard(received);
}

DecodeResult GallagerBDecoder::decode_hard(const BitVec& received) {
  LDPC_CHECK(received.size() == code_.n());
  const auto& checks = code_.check_adjacency();
  const auto& var_edges = code_.var_edges();

  for (std::size_t v = 0; v < code_.n(); ++v)
    for (std::uint32_t e : var_edges[v])
      var_to_check_[e] = received.get(v) ? 1 : 0;

  DecodeResult result;
  result.hard_bits = received;

  for (std::size_t iter = 1; iter <= options_.max_iterations; ++iter) {
    result.iterations = iter;

    // Check update: extrinsic parity (XOR of all other incoming bits).
    for (std::size_t c = 0; c < checks.size(); ++c) {
      const std::size_t deg = checks[c].size();
      const std::size_t base = code_.edge_index(c, 0);
      std::uint8_t total = 0;
      for (std::size_t i = 0; i < deg; ++i) total ^= var_to_check_[base + i];
      for (std::size_t i = 0; i < deg; ++i)
        check_to_var_[base + i] = total ^ var_to_check_[base + i];
    }

    // Variable update: flip against the channel bit when enough checks
    // disagree; outgoing messages use the extrinsic count.
    for (std::size_t v = 0; v < code_.n(); ++v) {
      const bool channel_bit = received.get(v);
      const std::size_t dv = var_edges[v].size();
      const std::size_t threshold =
          threshold_ ? threshold_ : std::max<std::size_t>(2, dv / 2 + 1);

      std::size_t disagree = 0;
      for (std::uint32_t e : var_edges[v])
        disagree += (check_to_var_[e] != (channel_bit ? 1 : 0));

      result.hard_bits.set(v, disagree >= threshold ? !channel_bit : channel_bit);
      for (std::uint32_t e : var_edges[v]) {
        const std::size_t extrinsic_disagree =
            disagree - (check_to_var_[e] != (channel_bit ? 1 : 0));
        const bool out = extrinsic_disagree >= threshold ? !channel_bit : channel_bit;
        var_to_check_[e] = out ? 1 : 0;
      }
    }

    if (options_.observer) {
      IterationSnapshot snap;
      snap.iteration = iter;
      snap.syndrome_weight = code_.syndrome_weight(result.hard_bits);
      options_.observer(snap);
    }

    if (options_.early_termination && code_.parity_ok(result.hard_bits)) {
      result.converged = true;
      result.status = DecodeStatus::kConverged;
      return result;
    }
  }

  result.converged = code_.parity_ok(result.hard_bits);
  result.status = classify_exit(result.converged, /*watchdog_fired=*/false, 0);
  return result;
}

}  // namespace ldpc
