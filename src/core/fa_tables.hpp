// Finite-alphabet message tables for the low-resolution layered decoders.
//
// The fa2/fa3/fa4 decoder family constrains check-to-variable messages to a
// sign-magnitude alphabet of 2^(msg_bits-1) magnitude levels while keeping
// the posterior at 8 bits. The check-node update becomes a staircase lookup:
// the raw min magnitude is compared against `levels - 1` thresholds and the
// selected reconstruction level is emitted with the row's sign product —
// no multiplier, no shifter, and the classic 0.75 min-sum correction is
// subsumed by the threshold/reconstruction choice (a monotone transform of
// the magnitude axis), so the int8 SIMD kernels need no 8-bit shifts at
// all (x86 has none).
//
// Tables are built offline per (code, msg_bits, design Eb/N0) by discrete
// density evolution over the int8 grid with mutual-information-maximizing
// (MIM) threshold selection, following the finite-alphabet decoding line of
// Ghanaatian et al. ("A 588 Gbps LDPC Decoder Based on Finite-Alphabet
// Message Passing") and Mohr/Bauch (layered MIM decoding):
//
//   1. the channel LLR pmf is quantized onto the signed int8 grid;
//   2. per decode iteration, the pmf of the row's min-excluding-own-edge
//      magnitude (with sign parity) is computed by pairwise sign-min
//      combination over the code's edge-perspective check-degree mixture;
//   3. the magnitude axis is partitioned into `levels` contiguous regions
//      by a dynamic program maximizing the mutual information between the
//      quantized message and the transmitted bit;
//   4. each region's reconstruction level is its conditional LLR mapped
//      back onto the posterior grid;
//   5. the variable-node update convolves channel and message pmfs (edge-
//      perspective variable-degree mixture, saturating at the rails) to
//      produce the next iteration's check-node input pmf.
//
// The construction is deterministic (pure double arithmetic, no RNG) and
// costs a few milliseconds, so decoders build their tables at construction.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "codes/qc_code.hpp"
#include "core/quant.hpp"

namespace ldpc {

/// Posterior rail of the finite-alphabet datapath. Symmetric +-127 (not the
/// two's-complement -128): abs/negate of every representable value stays
/// representable in int8 — the shape a sign-magnitude hardware datapath
/// has anyway, and the invariant the int8 SIMD lane math is proven against.
inline constexpr std::int32_t kFaRail = 127;

/// Maximum message resolution of the family (4 bits = sign + 8 levels).
inline constexpr int kFaMaxBits = 4;
inline constexpr int kFaMaxLevels = 1 << (kFaMaxBits - 1);

/// Check-node lookup for one decode iteration: `levels - 1` thresholds on
/// the raw min magnitude (region index = number of thresholds the magnitude
/// strictly exceeds) and `levels` nondecreasing reconstruction magnitudes
/// on the posterior grid. Fixed-capacity arrays so the SIMD pass structs
/// can reference rows without indirection; entries past the level count
/// repeat the last value (harmless for the staircase).
struct FaCnTable {
  std::array<std::int8_t, kFaMaxLevels - 1> thr{};
  std::array<std::int8_t, kFaMaxLevels> recon{};
};

/// A full per-iteration table set for one (code, msg_bits, design Eb/N0)
/// point. Decode iterations beyond the table count reuse the last table
/// (density evolution has converged by then).
struct FaTableSet {
  int msg_bits = 4;
  int levels = 8;              ///< 2^(msg_bits - 1) magnitude levels
  FixedFormat posterior{8, 2}; ///< grid the thresholds/recons live on
  float design_ebn0_db = 2.0F;
  std::vector<FaCnTable> tables;

  const FaCnTable& for_iteration(std::size_t iter) const {
    const std::size_t idx = iter - 1;
    return tables[idx < tables.size() ? idx : tables.size() - 1];
  }

  /// Family name used in decoder labels and message_format(): "fa4" etc.
  std::string name() const { return "fa" + std::to_string(msg_bits); }

  /// Scalar staircase: raw min magnitude (0..127) -> reconstruction
  /// magnitude. The int8 SIMD kernels compute exactly this via
  /// recon[0] + sum of masked deltas; asserted identical in tests.
  std::int32_t reconstruct(const FaCnTable& t, std::int32_t mag) const {
    int idx = 0;
    for (int k = 0; k < levels - 1; ++k) idx += mag > t.thr[k] ? 1 : 0;
    return t.recon[idx];
  }
};

/// Quantize a channel LLR onto the symmetric finite-alphabet posterior
/// grid: same rounding as FixedFormat::quantize, clamped at +-kFaRail.
inline std::int32_t fa_quantize(const FixedFormat& posterior, float llr) {
  const std::int64_t v = FixedFormat::round_half_away(posterior.scale(llr));
  return v > kFaRail ? kFaRail
                     : (v < -kFaRail ? -kFaRail : static_cast<std::int32_t>(v));
}

/// Counted variant: `clips` increments when the LLR saturated at the rails.
inline std::int32_t fa_quantize(const FixedFormat& posterior, float llr,
                                long long& clips) {
  const std::int64_t v = FixedFormat::round_half_away(posterior.scale(llr));
  if (v > kFaRail || v < -kFaRail) ++clips;
  return v > kFaRail ? kFaRail
                     : (v < -kFaRail ? -kFaRail : static_cast<std::int32_t>(v));
}

/// Build the per-iteration table set for `code` at `msg_bits` message
/// resolution (2, 3 or 4). `design_ebn0_db` sets the channel pmf the
/// density evolution is run at (waterfall region of the target code);
/// `num_tables` bounds the per-iteration table count. Throws ldpc::Error
/// on unsupported msg_bits.
FaTableSet build_fa_tables(const QCLdpcCode& code, int msg_bits,
                           float design_ebn0_db = 2.0F,
                           std::size_t num_tables = 8);

}  // namespace ldpc
