#include "channel/awgn.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ldpc {

float awgn_noise_variance(float ebn0_db, double code_rate, double bits_per_dim) {
  LDPC_CHECK(code_rate > 0.0 && code_rate < 1.0);
  LDPC_CHECK(bits_per_dim > 0.0);
  const double ebn0 = std::pow(10.0, static_cast<double>(ebn0_db) / 10.0);
  return static_cast<float>(1.0 / (2.0 * code_rate * bits_per_dim * ebn0));
}

AwgnChannel::AwgnChannel(float noise_variance, std::uint64_t seed)
    : noise_variance_(noise_variance),
      sigma_(std::sqrt(noise_variance)),
      rng_(seed) {
  LDPC_CHECK(noise_variance > 0.0F);
}

std::vector<float> AwgnChannel::transmit(const std::vector<float>& symbols) {
  std::vector<float> received(symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i)
    received[i] = symbols[i] + sigma_ * static_cast<float>(rng_.gaussian());
  return received;
}

}  // namespace ldpc
