#include "channel/modem.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ldpc {
namespace {
constexpr float kInvSqrt2 = 0.70710678118654752F;
}

std::vector<float> BpskModem::modulate(const BitVec& bits) {
  std::vector<float> symbols(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i)
    symbols[i] = bits.get(i) ? -1.0F : 1.0F;
  return symbols;
}

std::vector<float> BpskModem::demodulate(const std::vector<float>& symbols,
                                         float noise_variance) {
  LDPC_CHECK(noise_variance > 0.0F);
  std::vector<float> llr(symbols.size());
  const float gain = 2.0F / noise_variance;
  for (std::size_t i = 0; i < symbols.size(); ++i) llr[i] = gain * symbols[i];
  return llr;
}

std::vector<float> QpskModem::modulate(const BitVec& bits) {
  const std::size_t n_sym = (bits.size() + 1) / 2;
  std::vector<float> iq(2 * n_sym);
  for (std::size_t s = 0; s < n_sym; ++s) {
    const bool b_i = bits.get(2 * s);
    const bool b_q = (2 * s + 1 < bits.size()) ? bits.get(2 * s + 1) : false;
    iq[2 * s] = (b_i ? -kInvSqrt2 : kInvSqrt2);
    iq[2 * s + 1] = (b_q ? -kInvSqrt2 : kInvSqrt2);
  }
  return iq;
}

namespace {
// 4-PAM Gray levels for 16-QAM, unit average symbol energy over two rails.
constexpr float kQamScale = 0.31622776601683794F;  // 1/sqrt(10)

float pam4_level(bool b_outer, bool b_inner) {
  // Gray: (0,0)->+3, (0,1)->+1, (1,1)->-1, (1,0)->-3 (scaled).
  const float mag = b_inner ? 1.0F : 3.0F;
  return (b_outer ? -mag : mag) * kQamScale;
}
}  // namespace

std::vector<float> Qam16Modem::modulate(const BitVec& bits) {
  const std::size_t n_sym = (bits.size() + 3) / 4;
  std::vector<float> iq(2 * n_sym);
  auto bit_at = [&bits](std::size_t i) {
    return i < bits.size() ? bits.get(i) : false;
  };
  for (std::size_t s = 0; s < n_sym; ++s) {
    iq[2 * s] = pam4_level(bit_at(4 * s), bit_at(4 * s + 1));
    iq[2 * s + 1] = pam4_level(bit_at(4 * s + 2), bit_at(4 * s + 3));
  }
  return iq;
}

std::vector<float> Qam16Modem::demodulate(const std::vector<float>& iq,
                                          float noise_variance,
                                          std::size_t n_bits) {
  LDPC_CHECK(noise_variance > 0.0F);
  LDPC_CHECK(iq.size() * 2 >= n_bits);
  std::vector<float> llr(n_bits);
  const double inv2v = 1.0 / (2.0 * static_cast<double>(noise_variance));
  // Per rail, exact bit LLRs from the four level likelihoods.
  auto rail_llrs = [&](double y, double& llr_outer, double& llr_inner) {
    const double a = kQamScale;
    auto lk = [&](double level) {
      const double d = y - level;
      return std::exp(-d * d * inv2v);
    };
    const double p3 = lk(3 * a), p1 = lk(a), m1 = lk(-a), m3 = lk(-3 * a);
    constexpr double kFloor = 1e-300;  // avoid log(0) deep in the tails
    // outer = 0 selects the positive levels; inner = 0 the outer (+-3a)
    // magnitudes (see pam4_level).
    llr_outer = std::log(std::max(p3 + p1, kFloor)) -
                std::log(std::max(m1 + m3, kFloor));
    llr_inner = std::log(std::max(p3 + m3, kFloor)) -
                std::log(std::max(p1 + m1, kFloor));
  };
  for (std::size_t b = 0; b < n_bits; ++b) {
    const std::size_t sym = b / 4;
    const bool q_rail = (b % 4) >= 2;
    const bool inner = (b % 2) == 1;
    double lo, li;
    rail_llrs(iq[2 * sym + (q_rail ? 1 : 0)], lo, li);
    llr[b] = static_cast<float>(inner ? li : lo);
  }
  return llr;
}

namespace {

// Reflected-Gray 2^B-PAM shared by the QAM demappers. Level index j counts
// down from the most positive level (+2^B-1), and the rail's bit pattern is
// the natural Gray code of j with the MSB as the outer (sign) bit — for
// B = 2 this reproduces pam4_level exactly.
template <int B>
struct GrayPam {
  static constexpr unsigned kLevels = 1U << B;

  static constexpr unsigned gray_inverse(unsigned c) {
    unsigned j = c;
    for (int shift = 1; shift < B; shift <<= 1) j ^= j >> shift;
    return j;
  }

  /// Unscaled odd level of rail code `c` (bit B-1 = outer/sign bit).
  static constexpr int level_of_code(unsigned c) {
    return static_cast<int>(kLevels - 1) - 2 * static_cast<int>(gray_inverse(c));
  }

  /// Exact per-bit LLRs of one received rail value (log-sum over levels).
  static void exact_llrs(double y, double inv2v, float scale, double* out) {
    double sum0[B] = {}, sum1[B] = {};
    for (unsigned c = 0; c < kLevels; ++c) {
      const double d = y - static_cast<double>(level_of_code(c)) * scale;
      const double lk = std::exp(-d * d * inv2v);
      for (int t = 0; t < B; ++t)
        (((c >> (B - 1 - t)) & 1U) ? sum1[t] : sum0[t]) += lk;
    }
    constexpr double kFloor = 1e-300;  // avoid log(0) deep in the tails
    for (int t = 0; t < B; ++t)
      out[t] = std::log(std::max(sum0[t], kFloor)) -
               std::log(std::max(sum1[t], kFloor));
  }

  /// Max-log per-bit LLRs: (min distance^2 over bit=1) - (over bit=0), each
  /// divided by 2 sigma^2.
  static void maxlog_llrs(double y, double inv2v, float scale, double* out) {
    double min0[B], min1[B];
    for (int t = 0; t < B; ++t) min0[t] = min1[t] = 1e300;
    for (unsigned c = 0; c < kLevels; ++c) {
      const double d = y - static_cast<double>(level_of_code(c)) * scale;
      const double d2 = d * d;
      for (int t = 0; t < B; ++t) {
        double& slot = ((c >> (B - 1 - t)) & 1U) ? min1[t] : min0[t];
        if (d2 < slot) slot = d2;
      }
    }
    for (int t = 0; t < B; ++t) out[t] = (min1[t] - min0[t]) * inv2v;
  }
};

/// Demap an interleaved-IQ stream through GrayPam<B> rails (2B bits per
/// complex symbol; first B bits of a symbol ride I, the next B ride Q).
template <int B, typename RailFn>
std::vector<float> demap_qam(const std::vector<float>& iq,
                             float noise_variance, std::size_t n_bits,
                             float scale, RailFn rail_fn) {
  LDPC_CHECK(noise_variance > 0.0F);
  LDPC_CHECK(iq.size() * B >= n_bits);
  std::vector<float> llr(n_bits);
  const double inv2v = 1.0 / (2.0 * static_cast<double>(noise_variance));
  double rail[B];
  for (std::size_t b = 0; b < n_bits; ++b) {
    const std::size_t sym = b / (2 * B);
    const std::size_t within = b % (2 * B);
    const bool q_rail = within >= B;
    const int t = static_cast<int>(within % B);
    if (t == 0)  // first bit of a rail: demap the whole rail once
      rail_fn(static_cast<double>(iq[2 * sym + (q_rail ? 1 : 0)]), inv2v,
              scale, rail);
    llr[b] = static_cast<float>(rail[t]);
  }
  return llr;
}

// 8-PAM levels for 64-QAM, unit average symbol energy over two rails:
// E[mag^2] per rail = (1 + 9 + 25 + 49) / 4 = 21, so scale = 1/sqrt(42).
constexpr float kQam64Scale = 0.15430334996209191F;

}  // namespace

std::vector<float> Qam16Modem::demodulate_maxlog(const std::vector<float>& iq,
                                                 float noise_variance,
                                                 std::size_t n_bits) {
  return demap_qam<2>(iq, noise_variance, n_bits, kQamScale,
                      GrayPam<2>::maxlog_llrs);
}

std::vector<float> Qam64Modem::modulate(const BitVec& bits) {
  const std::size_t n_sym = (bits.size() + 5) / 6;
  std::vector<float> iq(2 * n_sym);
  auto bit_at = [&bits](std::size_t i) {
    return i < bits.size() && bits.get(i);
  };
  for (std::size_t s = 0; s < n_sym; ++s) {
    for (std::size_t rail = 0; rail < 2; ++rail) {
      unsigned code = 0;
      for (std::size_t t = 0; t < 3; ++t)
        code = (code << 1) | (bit_at(6 * s + 3 * rail + t) ? 1U : 0U);
      iq[2 * s + rail] =
          static_cast<float>(GrayPam<3>::level_of_code(code)) * kQam64Scale;
    }
  }
  return iq;
}

std::vector<float> Qam64Modem::demodulate(const std::vector<float>& iq,
                                          float noise_variance,
                                          std::size_t n_bits) {
  return demap_qam<3>(iq, noise_variance, n_bits, kQam64Scale,
                      GrayPam<3>::exact_llrs);
}

std::vector<float> Qam64Modem::demodulate_maxlog(const std::vector<float>& iq,
                                                 float noise_variance,
                                                 std::size_t n_bits) {
  return demap_qam<3>(iq, noise_variance, n_bits, kQam64Scale,
                      GrayPam<3>::maxlog_llrs);
}

std::vector<float> QpskModem::demodulate(const std::vector<float>& iq,
                                         float noise_variance,
                                         std::size_t n_bits) {
  LDPC_CHECK(noise_variance > 0.0F);
  LDPC_CHECK(iq.size() >= n_bits);  // 2 floats per 2 bits
  std::vector<float> llr(n_bits);
  // Per-rail amplitude is 1/sqrt(2), so llr = 2 * (y / sqrt(2)) ... the
  // matched-filter LLR for amplitude a is 2 a y / sigma^2.
  const float gain = 2.0F * kInvSqrt2 / noise_variance;
  for (std::size_t b = 0; b < n_bits; ++b) llr[b] = gain * iq[b];
  return llr;
}

}  // namespace ldpc
