#include "channel/modem.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ldpc {
namespace {
constexpr float kInvSqrt2 = 0.70710678118654752F;
}

std::vector<float> BpskModem::modulate(const BitVec& bits) {
  std::vector<float> symbols(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i)
    symbols[i] = bits.get(i) ? -1.0F : 1.0F;
  return symbols;
}

std::vector<float> BpskModem::demodulate(const std::vector<float>& symbols,
                                         float noise_variance) {
  LDPC_CHECK(noise_variance > 0.0F);
  std::vector<float> llr(symbols.size());
  const float gain = 2.0F / noise_variance;
  for (std::size_t i = 0; i < symbols.size(); ++i) llr[i] = gain * symbols[i];
  return llr;
}

std::vector<float> QpskModem::modulate(const BitVec& bits) {
  const std::size_t n_sym = (bits.size() + 1) / 2;
  std::vector<float> iq(2 * n_sym);
  for (std::size_t s = 0; s < n_sym; ++s) {
    const bool b_i = bits.get(2 * s);
    const bool b_q = (2 * s + 1 < bits.size()) ? bits.get(2 * s + 1) : false;
    iq[2 * s] = (b_i ? -kInvSqrt2 : kInvSqrt2);
    iq[2 * s + 1] = (b_q ? -kInvSqrt2 : kInvSqrt2);
  }
  return iq;
}

namespace {
// 4-PAM Gray levels for 16-QAM, unit average symbol energy over two rails.
constexpr float kQamScale = 0.31622776601683794F;  // 1/sqrt(10)

float pam4_level(bool b_outer, bool b_inner) {
  // Gray: (0,0)->+3, (0,1)->+1, (1,1)->-1, (1,0)->-3 (scaled).
  const float mag = b_inner ? 1.0F : 3.0F;
  return (b_outer ? -mag : mag) * kQamScale;
}
}  // namespace

std::vector<float> Qam16Modem::modulate(const BitVec& bits) {
  const std::size_t n_sym = (bits.size() + 3) / 4;
  std::vector<float> iq(2 * n_sym);
  auto bit_at = [&bits](std::size_t i) {
    return i < bits.size() ? bits.get(i) : false;
  };
  for (std::size_t s = 0; s < n_sym; ++s) {
    iq[2 * s] = pam4_level(bit_at(4 * s), bit_at(4 * s + 1));
    iq[2 * s + 1] = pam4_level(bit_at(4 * s + 2), bit_at(4 * s + 3));
  }
  return iq;
}

std::vector<float> Qam16Modem::demodulate(const std::vector<float>& iq,
                                          float noise_variance,
                                          std::size_t n_bits) {
  LDPC_CHECK(noise_variance > 0.0F);
  LDPC_CHECK(iq.size() * 2 >= n_bits);
  std::vector<float> llr(n_bits);
  const double inv2v = 1.0 / (2.0 * static_cast<double>(noise_variance));
  // Per rail, exact bit LLRs from the four level likelihoods.
  auto rail_llrs = [&](double y, double& llr_outer, double& llr_inner) {
    const double a = kQamScale;
    auto lk = [&](double level) {
      const double d = y - level;
      return std::exp(-d * d * inv2v);
    };
    const double p3 = lk(3 * a), p1 = lk(a), m1 = lk(-a), m3 = lk(-3 * a);
    constexpr double kFloor = 1e-300;  // avoid log(0) deep in the tails
    // outer = 0 selects the positive levels; inner = 0 the outer (+-3a)
    // magnitudes (see pam4_level).
    llr_outer = std::log(std::max(p3 + p1, kFloor)) -
                std::log(std::max(m1 + m3, kFloor));
    llr_inner = std::log(std::max(p3 + m3, kFloor)) -
                std::log(std::max(p1 + m1, kFloor));
  };
  for (std::size_t b = 0; b < n_bits; ++b) {
    const std::size_t sym = b / 4;
    const bool q_rail = (b % 4) >= 2;
    const bool inner = (b % 2) == 1;
    double lo, li;
    rail_llrs(iq[2 * sym + (q_rail ? 1 : 0)], lo, li);
    llr[b] = static_cast<float>(inner ? li : lo);
  }
  return llr;
}

std::vector<float> QpskModem::demodulate(const std::vector<float>& iq,
                                         float noise_variance,
                                         std::size_t n_bits) {
  LDPC_CHECK(noise_variance > 0.0F);
  LDPC_CHECK(iq.size() >= n_bits);  // 2 floats per 2 bits
  std::vector<float> llr(n_bits);
  // Per-rail amplitude is 1/sqrt(2), so llr = 2 * (y / sqrt(2)) ... the
  // matched-filter LLR for amplitude a is 2 a y / sigma^2.
  const float gain = 2.0F * kInvSqrt2 / noise_variance;
  for (std::size_t b = 0; b < n_bits; ++b) llr[b] = gain * iq[b];
  return llr;
}

}  // namespace ldpc
