// Modulation / demodulation for the Monte-Carlo simulation chain.
//
// Convention: bit 0 maps to +1, bit 1 maps to -1 (so a positive LLR votes
// for bit 0, matching Algorithm 1's initialization P_n = 2 y_n / sigma^2).
#pragma once

#include <cstddef>
#include <vector>

#include "util/bitvec.hpp"

namespace ldpc {

/// BPSK: one bit per real symbol.
struct BpskModem {
  /// Map codeword bits to antipodal symbols.
  static std::vector<float> modulate(const BitVec& bits);

  /// Channel LLRs from noisy symbols: llr = 2 y / sigma^2.
  static std::vector<float> demodulate(const std::vector<float>& symbols,
                                       float noise_variance);
};

/// Gray-mapped QPSK: two bits per complex symbol, stored as interleaved
/// (I, Q) floats. With Gray mapping each rail is an independent BPSK, which
/// the demodulator exploits.
struct QpskModem {
  /// Returns 2*ceil(n/2) floats (I0,Q0,I1,Q1,...); odd-length inputs pad the
  /// final Q rail with a zero bit.
  static std::vector<float> modulate(const BitVec& bits);

  /// LLRs per original bit (length must be passed back in).
  static std::vector<float> demodulate(const std::vector<float>& iq,
                                       float noise_variance, std::size_t n_bits);
};

/// Gray-mapped 16-QAM: four bits per complex symbol (two per rail with the
/// 4-PAM Gray levels {-3, -1, +1, +3}/sqrt(10), unit average symbol
/// energy). Demodulation uses exact per-bit LLRs computed from the four
/// level likelihoods of the rail — the max-log simplification is left to
/// the caller via llr clipping if desired.
struct Qam16Modem {
  /// Returns 2*ceil(n/4) floats; inputs padded with zero bits to a multiple
  /// of 4.
  static std::vector<float> modulate(const BitVec& bits);

  /// Exact LLRs per original bit.
  static std::vector<float> demodulate(const std::vector<float>& iq,
                                       float noise_variance, std::size_t n_bits);

  /// Max-log approximation: per bit, the difference of the two closest
  /// squared distances over 2 sigma^2 — the form a fixed-point receiver
  /// implements (no exp/log). Within a constant bound of the exact LLRs.
  static std::vector<float> demodulate_maxlog(const std::vector<float>& iq,
                                              float noise_variance,
                                              std::size_t n_bits);
};

/// Gray-mapped 64-QAM: six bits per complex symbol (three per rail with the
/// 8-PAM reflected-Gray levels {-7,-5,-3,-1,+1,+3,+5,+7}/sqrt(42), unit
/// average symbol energy). Bit order per symbol: (I outer, I mid, I inner,
/// Q outer, Q mid, Q inner) — the outer bit is the rail's sign, matching
/// the 16-QAM convention. Both demappers are provided: the exact
/// log-sum-exp per-bit LLRs and the max-log approximation.
struct Qam64Modem {
  /// Returns 2*ceil(n/6) floats; inputs padded with zero bits to a multiple
  /// of 6.
  static std::vector<float> modulate(const BitVec& bits);

  /// Exact (log-sum over the eight rail levels) LLRs per original bit.
  static std::vector<float> demodulate(const std::vector<float>& iq,
                                       float noise_variance, std::size_t n_bits);

  /// Max-log approximation (nearest-level squared-distance difference).
  static std::vector<float> demodulate_maxlog(const std::vector<float>& iq,
                                              float noise_variance,
                                              std::size_t n_bits);
};

}  // namespace ldpc
