// Flat Rayleigh fading channel with perfect channel state information.
//
// Models the paper's target environment (mobile wireless handsets) more
// faithfully than pure AWGN: symbols are scaled by Rayleigh-distributed
// gains h with E[h^2] = 1, then hit by AWGN. The receiver knows h (coherent
// detection), so the matched-filter LLR gains a per-symbol weight.
//
// Two physical refinements over the original per-real-sample model:
//   * complex symbols fade coherently — transmit_iq() draws ONE gain per
//     complex symbol, shared by the I and Q rails (the old per-real-sample
//     draw gave the two rails of one QPSK/QAM symbol independent fades,
//     which no physical channel does);
//   * block fading — `coherence_symbols` consecutive symbols share a gain
//     (a coherence-time model; 1 = fully interleaved i.i.d. fading).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace ldpc {

class RayleighChannel {
 public:
  /// `coherence_symbols` = symbols per fading block: gains are constant
  /// within a block and independent across blocks. Applies to both the real
  /// (BPSK) and complex (transmit_iq) paths.
  RayleighChannel(float noise_variance, std::uint64_t seed = 42,
                  std::size_t coherence_symbols = 1);

  float noise_variance() const { return noise_variance_; }
  std::size_t coherence_symbols() const { return coherence_; }

  /// Real-symbol (BPSK) path: y = h .* x + n, one gain per real symbol
  /// (constant over coherence blocks). The gains are appended to `gains`
  /// (cleared first) for the coherent demodulator.
  std::vector<float> transmit(const std::vector<float>& symbols,
                              std::vector<float>& gains);

  /// Complex-symbol path for the I/Q modems: `iq` is interleaved (I, Q);
  /// one gain per complex symbol, coherent across both rails, constant over
  /// coherence blocks. `gains` receives iq.size() / 2 entries.
  std::vector<float> transmit_iq(const std::vector<float>& iq,
                                 std::vector<float>& gains);

  /// Coherent BPSK LLRs: llr_i = 2 h_i y_i / sigma^2.
  static std::vector<float> demodulate_bpsk(const std::vector<float>& received,
                                            const std::vector<float>& gains,
                                            float noise_variance);

  /// Fading-aware Gray demappers for the complex modems: each symbol is
  /// equalized by its known gain (y / h) and demapped at the gain-scaled
  /// noise variance sigma^2 / h^2 — exact for coherent reception with
  /// perfect CSI. `gains` must hold one entry per complex symbol
  /// (i.e. per transmit_iq, NOT per real sample).
  static std::vector<float> demodulate_qpsk(const std::vector<float>& iq,
                                            const std::vector<float>& gains,
                                            float noise_variance,
                                            std::size_t n_bits);
  static std::vector<float> demodulate_qam16(const std::vector<float>& iq,
                                             const std::vector<float>& gains,
                                             float noise_variance,
                                             std::size_t n_bits);
  static std::vector<float> demodulate_qam64(const std::vector<float>& iq,
                                             const std::vector<float>& gains,
                                             float noise_variance,
                                             std::size_t n_bits);

 private:
  float rayleigh_gain();

  float noise_variance_;
  float sigma_;
  std::size_t coherence_;
  Xoshiro256 rng_;
};

}  // namespace ldpc
