// Flat Rayleigh fading channel with perfect channel state information.
//
// Models the paper's target environment (mobile wireless handsets) more
// faithfully than pure AWGN: each symbol is scaled by an independent
// Rayleigh-distributed gain h with E[h^2] = 1, then hit by AWGN. The
// receiver knows h (coherent detection), so the matched-filter LLR gains a
// per-symbol weight: llr = 2 h y / sigma^2.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace ldpc {

class RayleighChannel {
 public:
  RayleighChannel(float noise_variance, std::uint64_t seed = 42);

  float noise_variance() const { return noise_variance_; }

  /// y = h .* x + n. The per-symbol gains are appended to `gains` (cleared
  /// first) for the coherent demodulator.
  std::vector<float> transmit(const std::vector<float>& symbols,
                              std::vector<float>& gains);

  /// Coherent BPSK LLRs: llr_i = 2 h_i y_i / sigma^2.
  static std::vector<float> demodulate_bpsk(const std::vector<float>& received,
                                            const std::vector<float>& gains,
                                            float noise_variance);

 private:
  float noise_variance_;
  float sigma_;
  Xoshiro256 rng_;
};

}  // namespace ldpc
