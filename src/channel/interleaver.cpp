#include "channel/interleaver.hpp"

namespace ldpc {

BlockInterleaver::BlockInterleaver(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  LDPC_CHECK_MSG(rows >= 1 && cols >= 1,
                 "interleaver geometry must be positive, got " << rows << "x"
                                                               << cols);
}

}  // namespace ldpc
