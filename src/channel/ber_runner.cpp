#include "channel/ber_runner.hpp"

#include <algorithm>

#include <atomic>
#include <mutex>
#include <thread>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "channel/rayleigh.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ldpc {

BerRunner::BerRunner(const QCLdpcCode& code, DecoderFactory factory,
                     BerConfig config)
    : code_(code), factory_(std::move(factory)), config_(std::move(config)) {
  LDPC_CHECK(factory_ != nullptr);
  LDPC_CHECK(!config_.ebn0_db.empty());
  LDPC_CHECK(config_.num_workers >= 1);
  LDPC_CHECK(config_.max_frames >= config_.min_frames);
}

std::vector<BerPoint> BerRunner::run() {
  std::vector<BerPoint> points;
  points.reserve(config_.ebn0_db.size());
  for (std::size_t i = 0; i < config_.ebn0_db.size(); ++i)
    points.push_back(run_point(config_.ebn0_db[i], i));
  return points;
}

BerPoint BerRunner::run_point(float ebn0_db, std::size_t point_index) {
  BerPoint point;
  point.ebn0_db = ebn0_db;

  // Unit-energy complex symbols carry 2 (QPSK) or 4 (16-QAM) coded bits, so
  // the per-dimension energy drops accordingly; this factor keeps the Eb/N0
  // accounting correct across modulations (sigma^2 = 1/(2 R k Eb/N0) for k
  // coded bits per unit-energy 2D symbol ... expressed per dimension).
  const double bits_factor = config_.modulation == Modulation::kQam16 ? 4.0
                             : config_.modulation == Modulation::kQpsk ? 2.0
                                                                       : 1.0;
  const float variance = awgn_noise_variance(ebn0_db, code_.rate(), bits_factor);
  std::atomic<std::size_t> frames_issued{0};
  std::atomic<std::size_t> frame_errors_seen{0};
  std::mutex merge_mutex;

  auto worker = [&](unsigned worker_id) {
    // Worker-private simulation chain; seeds are derived from (seed, point,
    // worker) so every configuration is reproducible.
    std::uint64_t sm = config_.seed + 0x9e3779b9ULL * (point_index + 1);
    sm ^= 0x1000003ULL * (worker_id + 1);
    Xoshiro256 info_rng(splitmix64(sm));
    AwgnChannel awgn(variance, splitmix64(sm));
    RayleighChannel rayleigh(variance, splitmix64(sm));
    const RuEncoder encoder(code_);
    const std::unique_ptr<Decoder> decoder = factory_();
    LDPC_CHECK(decoder->n() == code_.n());

    // One frame through the configured modulation and channel model.
    std::vector<float> gains;
    auto transmit_frame = [&](const BitVec& codeword) -> std::vector<float> {
      std::vector<float> symbols;
      switch (config_.modulation) {
        case Modulation::kBpsk:  symbols = BpskModem::modulate(codeword); break;
        case Modulation::kQpsk:  symbols = QpskModem::modulate(codeword); break;
        case Modulation::kQam16: symbols = Qam16Modem::modulate(codeword); break;
      }
      if (config_.channel == ChannelModel::kAwgn) {
        const auto received = awgn.transmit(symbols);
        switch (config_.modulation) {
          case Modulation::kBpsk:
            return BpskModem::demodulate(received, variance);
          case Modulation::kQpsk:
            return QpskModem::demodulate(received, variance, code_.n());
          case Modulation::kQam16:
            return Qam16Modem::demodulate(received, variance, code_.n());
        }
      }
      // Rayleigh fading with per-dimension independent gains (fully
      // interleaved assumption), coherent reception.
      const auto received = rayleigh.transmit(symbols, gains);
      if (config_.modulation == Modulation::kBpsk)
        return RayleighChannel::demodulate_bpsk(received, gains, variance);
      if (config_.modulation == Modulation::kQpsk) {
        std::vector<float> llr(code_.n());
        constexpr float kInvSqrt2 = 0.70710678118654752F;
        const float base = 2.0F * kInvSqrt2 / variance;
        for (std::size_t b = 0; b < llr.size(); ++b)
          llr[b] = base * gains[b] * received[b];
        return llr;
      }
      // 16-QAM over fading: equalize each rail by its known gain, scale the
      // effective noise accordingly, and reuse the AWGN demapper.
      std::vector<float> llr(code_.n());
      for (std::size_t b = 0; b < llr.size(); ++b) {
        const std::size_t rail = b / 2;  // two bits per rail
        const float h = std::max(gains[rail], 1e-6F);
        const auto rail_llr = Qam16Modem::demodulate(
            {received[rail] / h, 0.0F}, variance / (h * h), 2);
        llr[b] = rail_llr[b % 2];
      }
      return llr;
    };

    BerPoint local;
    BitVec info(code_.k());
    while (true) {
      const std::size_t frame = frames_issued.fetch_add(1);
      if (frame >= config_.max_frames) break;
      if (frame >= config_.min_frames &&
          frame_errors_seen.load(std::memory_order_relaxed) >=
              config_.target_frame_errors)
        break;

      if (config_.random_info) {
        for (std::size_t i = 0; i < info.size(); ++i) info.set(i, info_rng.coin());
      } else {
        info.clear_all();
      }
      const BitVec codeword = encoder.encode(info);
      const auto llr = transmit_frame(codeword);

      const DecodeResult result = decoder->decode(llr);

      std::size_t bit_errors = 0;
      for (std::size_t i = 0; i < code_.k(); ++i)
        if (result.hard_bits.get(i) != info.get(i)) ++bit_errors;

      ++local.frames;
      local.sum_iterations += static_cast<double>(result.iterations);
      local.faults_injected += result.faults_injected;
      if (result.status == DecodeStatus::kWatchdogAbort)
        ++local.watchdog_aborts;
      if (result.iterations > local.iteration_histogram.size())
        local.iteration_histogram.resize(result.iterations, 0);
      ++local.iteration_histogram[result.iterations - 1];
      if (bit_errors > 0) {
        local.bit_errors += bit_errors;
        ++local.frame_errors;
        if (result.converged) ++local.undetected_errors;
        else ++local.detected_errors;
        frame_errors_seen.fetch_add(1, std::memory_order_relaxed);
      }
    }

    const std::scoped_lock lock(merge_mutex);
    point.frames += local.frames;
    point.bit_errors += local.bit_errors;
    point.frame_errors += local.frame_errors;
    point.undetected_errors += local.undetected_errors;
    point.detected_errors += local.detected_errors;
    point.watchdog_aborts += local.watchdog_aborts;
    point.faults_injected += local.faults_injected;
    point.sum_iterations += local.sum_iterations;
    if (local.iteration_histogram.size() > point.iteration_histogram.size())
      point.iteration_histogram.resize(local.iteration_histogram.size(), 0);
    for (std::size_t i = 0; i < local.iteration_histogram.size(); ++i)
      point.iteration_histogram[i] += local.iteration_histogram[i];
  };

  if (config_.num_workers == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(config_.num_workers);
    for (unsigned w = 0; w < config_.num_workers; ++w)
      threads.emplace_back(worker, w);
    for (auto& t : threads) t.join();
  }
  return point;
}

}  // namespace ldpc
