#include "channel/ber_runner.hpp"

#include <algorithm>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "channel/rayleigh.hpp"
#include "runtime/supervisor.hpp"
#include "util/check.hpp"

namespace ldpc {

namespace {

/// Frames issued between early-stop checks. A constant (never a function of
/// the worker count) so the set of simulated frames — and therefore every
/// counter — is identical for any num_workers.
constexpr std::size_t kWaveFrames = 32;

/// Everything one frame contributes to a BerPoint, written into a slot
/// indexed by frame number and folded in deterministic frame order after
/// the wave drains.
struct FrameOutcome {
  std::size_t bit_errors = 0;
  std::size_t iterations = 0;
  bool converged = false;
  DecodeStatus status = DecodeStatus::kMaxIterations;
  std::size_t faults_injected = 0;
};

/// One frame through the configured modulation and channel model.
std::vector<float> transmit_frame(const BerConfig& config, std::size_t n,
                                  float variance, const BitVec& codeword,
                                  AwgnChannel& awgn,
                                  RayleighChannel& rayleigh) {
  std::vector<float> symbols;
  switch (config.modulation) {
    case Modulation::kBpsk:  symbols = BpskModem::modulate(codeword); break;
    case Modulation::kQpsk:  symbols = QpskModem::modulate(codeword); break;
    case Modulation::kQam16: symbols = Qam16Modem::modulate(codeword); break;
    case Modulation::kQam64: symbols = Qam64Modem::modulate(codeword); break;
  }
  if (config.channel == ChannelModel::kAwgn) {
    const auto received = awgn.transmit(symbols);
    switch (config.modulation) {
      case Modulation::kBpsk:
        return BpskModem::demodulate(received, variance);
      case Modulation::kQpsk:
        return QpskModem::demodulate(received, variance, n);
      case Modulation::kQam16:
        return Qam16Modem::demodulate(received, variance, n);
      case Modulation::kQam64:
        return Qam64Modem::demodulate(received, variance, n);
    }
  }
  // Rayleigh fading, coherent reception with perfect CSI. BPSK rides the
  // real-symbol path; the I/Q modems fade per complex symbol (both rails
  // share the gain) and demap through the gain-aware equalizers.
  std::vector<float> gains;
  if (config.modulation == Modulation::kBpsk) {
    const auto received = rayleigh.transmit(symbols, gains);
    return RayleighChannel::demodulate_bpsk(received, gains, variance);
  }
  const auto received = rayleigh.transmit_iq(symbols, gains);
  switch (config.modulation) {
    case Modulation::kQpsk:
      return RayleighChannel::demodulate_qpsk(received, gains, variance, n);
    case Modulation::kQam16:
      return RayleighChannel::demodulate_qam16(received, gains, variance, n);
    default:
      return RayleighChannel::demodulate_qam64(received, gains, variance, n);
  }
}

void accumulate(BerPoint& point, const FrameOutcome& outcome) {
  ++point.frames;
  point.sum_iterations += static_cast<double>(outcome.iterations);
  point.faults_injected += outcome.faults_injected;
  if (outcome.status == DecodeStatus::kWatchdogAbort) ++point.watchdog_aborts;
  if (outcome.iterations > 0) {
    if (outcome.iterations > point.iteration_histogram.size())
      point.iteration_histogram.resize(outcome.iterations, 0);
    ++point.iteration_histogram[outcome.iterations - 1];
  }
  if (outcome.bit_errors > 0) {
    point.bit_errors += outcome.bit_errors;
    ++point.frame_errors;
    if (outcome.converged) ++point.undetected_errors;
    else ++point.detected_errors;
  }
}

}  // namespace

BerRunner::BerRunner(const QCLdpcCode& code, DecoderFactory factory,
                     BerConfig config)
    : code_(code), factory_(std::move(factory)), config_(std::move(config)) {
  LDPC_CHECK(factory_ != nullptr);
  LDPC_CHECK(!config_.ebn0_db.empty());
  LDPC_CHECK(config_.num_workers >= 1);
  LDPC_CHECK(config_.max_frames >= config_.min_frames);
  LDPC_CHECK(config_.max_decode_attempts >= 1);
  LDPC_CHECK_MSG(config_.max_decode_attempts == 1 ||
                     !config_.escalation_factories.empty(),
                 "max_decode_attempts > 1 needs escalation_factories "
                 "(see make_escalation_factories)");
}

std::vector<BerPoint> BerRunner::run() {
  std::vector<BerPoint> points;
  points.reserve(config_.ebn0_db.size());
  for (std::size_t i = 0; i < config_.ebn0_db.size(); ++i)
    points.push_back(run_point(config_.ebn0_db[i], i));
  return points;
}

BerPoint BerRunner::run_point(float ebn0_db, std::size_t point_index) {
  BerPoint point;
  point.ebn0_db = ebn0_db;

  // Unit-energy complex symbols carry 2 (QPSK), 4 (16-QAM) or 6 (64-QAM)
  // coded bits, so the per-dimension energy drops accordingly; this factor
  // keeps the Eb/N0 accounting correct across modulations (sigma^2 =
  // 1/(2 R k Eb/N0) for k coded bits per unit-energy 2D symbol ...
  // expressed per dimension).
  const double bits_factor = modulation_bits_per_symbol(config_.modulation);
  const float variance = awgn_noise_variance(ebn0_db, code_.rate(), bits_factor);
  // Shared across workers: encode() is const and carries no mutable state.
  const RuEncoder encoder(code_);

  SupervisorConfig supervisor_config;
  supervisor_config.engine.num_workers = config_.num_workers;
  supervisor_config.engine.queue_capacity = kWaveFrames;
  supervisor_config.engine.escalation_factories = config_.escalation_factories;
  supervisor_config.retry = RetryPolicy::none();
  supervisor_config.retry.max_attempts = config_.max_decode_attempts;
  DecodeSupervisor supervisor(factory_, supervisor_config);

  // The whole simulation of one frame, run on whichever worker picks the
  // job up. Deterministic: all three RNGs are re-seeded per frame from the
  // frame index, and the outcome lands in the frame's own slot. Retry
  // attempts re-decode the *same* received LLRs (the frame's channel seeds
  // do not depend on the attempt) on the escalated decoder — attempts for a
  // frame are strictly sequential, so the final attempt's outcome wins.
  auto run_frame = [&](std::size_t frame, FrameOutcome* outcome)
      -> DecodeSupervisor::TaskFactory {
    return [&, frame, outcome](std::size_t /*attempt*/) -> BatchEngine::Task {
      return [&, frame, outcome](Decoder& decoder) {
        LDPC_CHECK(decoder.n() == code_.n());
        const FrameSeeds seeds =
            ber_frame_seeds(config_.seed, point_index, frame);
        Xoshiro256 info_rng(seeds.info);
        AwgnChannel awgn(variance, seeds.awgn);
        RayleighChannel rayleigh(variance, seeds.rayleigh,
                                 config_.coherence_symbols);

        BitVec info(code_.k());
        if (config_.random_info) {
          for (std::size_t i = 0; i < info.size(); ++i)
            info.set(i, info_rng.coin());
        }
        const BitVec codeword = encoder.encode(info);
        const auto llr = transmit_frame(config_, code_.n(), variance,
                                        codeword, awgn, rayleigh);
        DecodeResult result = decoder.decode(llr);

        outcome->bit_errors = 0;
        for (std::size_t i = 0; i < code_.k(); ++i)
          if (result.hard_bits.get(i) != info.get(i)) ++outcome->bit_errors;
        outcome->iterations = result.iterations;
        outcome->converged = result.converged;
        outcome->status = result.status;
        outcome->faults_injected = result.faults_injected;
        return result;
      };
    };
  };

  std::vector<FrameOutcome> outcomes(kWaveFrames);
  std::vector<DecodeResult> slots(kWaveFrames);
  std::size_t next_frame = 0;
  while (next_frame < config_.max_frames) {
    if (next_frame >= config_.min_frames &&
        point.frame_errors >= config_.target_frame_errors)
      break;
    const std::size_t wave =
        std::min(kWaveFrames, config_.max_frames - next_frame);
    for (std::size_t i = 0; i < wave; ++i) {
      outcomes[i] = FrameOutcome{};
      const SubmitStatus submitted = supervisor.submit_task(
          next_frame + i, run_frame(next_frame + i, &outcomes[i]), &slots[i]);
      LDPC_CHECK_MSG(submit_accepted(submitted),
                     "BER frame rejected: " << to_string(submitted));
    }
    supervisor.drain();
    for (std::size_t i = 0; i < wave; ++i) accumulate(point, outcomes[i]);
    next_frame += wave;
  }

  const RetryStats retry = supervisor.metrics().retry;
  point.retries = retry.retries_submitted;
  for (std::size_t a = 1; a < retry.recovered_by_attempt.size(); ++a)
    point.recovered_by_retry += retry.recovered_by_attempt[a];
  return point;
}

}  // namespace ldpc
