// Multithreaded Monte-Carlo BER/FER harness.
//
// Frames are decoded by the runtime batch engine (runtime/batch_engine.hpp):
// a pool of workers each owning a private decoder, fed through a bounded
// queue. Every frame's RNG streams are derived from (seed, point,
// frame_index) — never from the worker that happens to run it — and frames
// are issued in fixed-size waves with the early-stop decision taken only at
// wave boundaries, so a point's counts are bit-identical for *any* worker
// count, not merely for a fixed one. The harness stops a point early once
// `target_frame_errors` have been observed — the standard technique for
// equal-confidence points.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "codes/encoder.hpp"
#include "codes/qc_code.hpp"
#include "core/decoder.hpp"
#include "core/decoder_factory.hpp"
#include "util/rng.hpp"

namespace ldpc {

/// The three independent RNG seeds one simulated frame consumes.
struct FrameSeeds {
  std::uint64_t info = 0;      ///< information-bit generator
  std::uint64_t awgn = 0;      ///< AWGN noise generator
  std::uint64_t rayleigh = 0;  ///< Rayleigh fading gain generator
};

/// Seed derivation for one frame of one sweep point: a splitmix64 stream
/// keyed by (seed, point, frame) and *advanced between draws*, so the three
/// consumers get pairwise-distinct streams (seeding them identically
/// correlates the noise with the data). Keyed by frame index — not worker
/// id — so the simulation is invariant to thread count and scheduling.
inline FrameSeeds ber_frame_seeds(std::uint64_t seed, std::size_t point_index,
                                  std::size_t frame_index) {
  std::uint64_t sm = seed + 0x9e3779b97f4a7c15ULL * (point_index + 1);
  sm ^= 0xd1b54a32d192ed03ULL * (frame_index + 1);
  FrameSeeds seeds;
  seeds.info = splitmix64(sm);
  seeds.awgn = splitmix64(sm);
  seeds.rayleigh = splitmix64(sm);
  return seeds;
}

enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };
enum class ChannelModel { kAwgn, kRayleigh };

/// Coded bits per unit-energy complex symbol (1 for BPSK's real symbol) —
/// the `bits_per_dim` factor of awgn_noise_variance and the symbol-count
/// divisor of link-throughput accounting.
inline double modulation_bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kBpsk:  return 1.0;
    case Modulation::kQpsk:  return 2.0;
    case Modulation::kQam16: return 4.0;
    case Modulation::kQam64: return 6.0;
  }
  return 1.0;
}

struct BerConfig {
  std::vector<float> ebn0_db;            ///< sweep points
  std::size_t max_frames = 100000;       ///< per point, across all workers
  std::size_t target_frame_errors = 50;  ///< early stop per point
  std::size_t min_frames = 100;          ///< never stop before this many
  unsigned num_workers = 1;
  std::uint64_t seed = 2009;
  bool random_info = true;  ///< false = all-zero information words
  Modulation modulation = Modulation::kBpsk;
  ChannelModel channel = ChannelModel::kAwgn;
  /// Rayleigh block-fading coherence: symbols per fading block (1 = fully
  /// interleaved i.i.d. fading). Ignored for AWGN.
  std::size_t coherence_symbols = 1;
  /// Total decode attempts per frame (1 = no retry). Values > 1 re-decode
  /// the same received LLRs on the escalation ladder below and require it
  /// to be non-empty. Retries are keyed (frame, attempt), so sweep counts
  /// stay worker-count invariant.
  std::size_t max_decode_attempts = 1;
  /// Per-rung decoder factories for re-decodes; see
  /// runtime/retry_policy.hpp (make_escalation_factories).
  std::vector<DecoderFactory> escalation_factories;
};

struct BerPoint {
  float ebn0_db = 0.0F;
  std::size_t frames = 0;
  std::size_t bit_errors = 0;    ///< over information bits
  std::size_t frame_errors = 0;  ///< frames with any info-bit error
  std::size_t undetected_errors = 0;  ///< decoder converged to wrong codeword
  std::size_t detected_errors = 0;    ///< frame errors flagged by DecodeStatus
  std::size_t watchdog_aborts = 0;    ///< frames cut short by the watchdog
  std::size_t faults_injected = 0;    ///< upsets landed across all frames
  std::size_t retries = 0;            ///< re-decode attempts submitted
  std::size_t recovered_by_retry = 0; ///< frames converged on attempt >= 2
  double sum_iterations = 0.0;
  /// Iterations histogram: index i counts frames decoded in i+1 iterations
  /// (sized to the largest observed count).
  std::vector<std::size_t> iteration_histogram;

  double ber(std::size_t k) const {
    return frames == 0 ? 0.0
                       : static_cast<double>(bit_errors) /
                             (static_cast<double>(frames) * static_cast<double>(k));
  }
  double fer() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(frame_errors) / static_cast<double>(frames);
  }
  double avg_iterations() const {
    return frames == 0 ? 0.0 : sum_iterations / static_cast<double>(frames);
  }
  /// Fraction of frame errors the decoder itself flagged (status !=
  /// converged) — the graceful-degradation detection-coverage metric.
  double detection_coverage() const {
    return frame_errors == 0 ? 1.0
                             : static_cast<double>(detected_errors) /
                                   static_cast<double>(frame_errors);
  }
};

class BerRunner {
 public:
  /// `code` must outlive the runner and every decoder the factory creates.
  BerRunner(const QCLdpcCode& code, DecoderFactory factory, BerConfig config);

  /// Run the full Eb/N0 sweep; one BerPoint per configured dB value.
  std::vector<BerPoint> run();

 private:
  BerPoint run_point(float ebn0_db, std::size_t point_index);

  const QCLdpcCode& code_;
  DecoderFactory factory_;
  BerConfig config_;
};

}  // namespace ldpc
