#include "channel/rayleigh.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ldpc {

RayleighChannel::RayleighChannel(float noise_variance, std::uint64_t seed)
    : noise_variance_(noise_variance),
      sigma_(std::sqrt(noise_variance)),
      rng_(seed) {
  LDPC_CHECK(noise_variance > 0.0F);
}

std::vector<float> RayleighChannel::transmit(const std::vector<float>& symbols,
                                             std::vector<float>& gains) {
  gains.clear();
  gains.reserve(symbols.size());
  std::vector<float> received(symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    // |CN(0,1)| is Rayleigh with E[h^2] = 1: h = sqrt((g1^2 + g2^2) / 2).
    const auto g1 = static_cast<float>(rng_.gaussian());
    const auto g2 = static_cast<float>(rng_.gaussian());
    const float h = std::sqrt((g1 * g1 + g2 * g2) * 0.5F);
    gains.push_back(h);
    received[i] =
        h * symbols[i] + sigma_ * static_cast<float>(rng_.gaussian());
  }
  return received;
}

std::vector<float> RayleighChannel::demodulate_bpsk(
    const std::vector<float>& received, const std::vector<float>& gains,
    float noise_variance) {
  LDPC_CHECK(received.size() == gains.size());
  LDPC_CHECK(noise_variance > 0.0F);
  std::vector<float> llr(received.size());
  const float base_gain = 2.0F / noise_variance;
  for (std::size_t i = 0; i < received.size(); ++i)
    llr[i] = base_gain * gains[i] * received[i];
  return llr;
}

}  // namespace ldpc
