#include "channel/rayleigh.hpp"

#include <algorithm>
#include <cmath>

#include "channel/modem.hpp"
#include "util/check.hpp"

namespace ldpc {

namespace {
/// Below this gain a symbol carried essentially no energy; the equalized
/// observation is meaningless, so the demappers clamp h to keep the
/// division defined (the resulting LLRs are ~0, i.e. an erasure).
constexpr float kMinGain = 1e-6F;
}  // namespace

RayleighChannel::RayleighChannel(float noise_variance, std::uint64_t seed,
                                 std::size_t coherence_symbols)
    : noise_variance_(noise_variance),
      sigma_(std::sqrt(noise_variance)),
      coherence_(coherence_symbols),
      rng_(seed) {
  LDPC_CHECK(noise_variance > 0.0F);
  LDPC_CHECK(coherence_symbols >= 1);
}

float RayleighChannel::rayleigh_gain() {
  // |CN(0,1)| is Rayleigh with E[h^2] = 1: h = sqrt((g1^2 + g2^2) / 2).
  const auto g1 = static_cast<float>(rng_.gaussian());
  const auto g2 = static_cast<float>(rng_.gaussian());
  return std::sqrt((g1 * g1 + g2 * g2) * 0.5F);
}

std::vector<float> RayleighChannel::transmit(const std::vector<float>& symbols,
                                             std::vector<float>& gains) {
  gains.clear();
  gains.reserve(symbols.size());
  std::vector<float> received(symbols.size());
  for (std::size_t block = 0; block < symbols.size(); block += coherence_) {
    const float h = rayleigh_gain();
    const std::size_t end = std::min(symbols.size(), block + coherence_);
    for (std::size_t i = block; i < end; ++i) {
      gains.push_back(h);
      received[i] =
          h * symbols[i] + sigma_ * static_cast<float>(rng_.gaussian());
    }
  }
  return received;
}

std::vector<float> RayleighChannel::transmit_iq(const std::vector<float>& iq,
                                                std::vector<float>& gains) {
  LDPC_CHECK(iq.size() % 2 == 0);
  const std::size_t n_sym = iq.size() / 2;
  gains.clear();
  gains.reserve(n_sym);
  std::vector<float> received(iq.size());
  for (std::size_t block = 0; block < n_sym; block += coherence_) {
    const float h = rayleigh_gain();
    const std::size_t end = std::min(n_sym, block + coherence_);
    for (std::size_t s = block; s < end; ++s) {
      gains.push_back(h);
      received[2 * s] =
          h * iq[2 * s] + sigma_ * static_cast<float>(rng_.gaussian());
      received[2 * s + 1] =
          h * iq[2 * s + 1] + sigma_ * static_cast<float>(rng_.gaussian());
    }
  }
  return received;
}

std::vector<float> RayleighChannel::demodulate_bpsk(
    const std::vector<float>& received, const std::vector<float>& gains,
    float noise_variance) {
  LDPC_CHECK(received.size() == gains.size());
  LDPC_CHECK(noise_variance > 0.0F);
  std::vector<float> llr(received.size());
  const float base_gain = 2.0F / noise_variance;
  for (std::size_t i = 0; i < received.size(); ++i)
    llr[i] = base_gain * gains[i] * received[i];
  return llr;
}

std::vector<float> RayleighChannel::demodulate_qpsk(
    const std::vector<float>& iq, const std::vector<float>& gains,
    float noise_variance, std::size_t n_bits) {
  LDPC_CHECK(iq.size() == 2 * gains.size());
  LDPC_CHECK(iq.size() >= n_bits);
  LDPC_CHECK(noise_variance > 0.0F);
  // Matched filter per rail: llr = 2 a h y / sigma^2, a = 1/sqrt(2). Both
  // rails of symbol s share the coherent gain h_s.
  constexpr float kInvSqrt2 = 0.70710678118654752F;
  const float base = 2.0F * kInvSqrt2 / noise_variance;
  std::vector<float> llr(n_bits);
  for (std::size_t b = 0; b < n_bits; ++b)
    llr[b] = base * gains[b / 2] * iq[b];
  return llr;
}

namespace {

/// Shared fading demap: equalize symbol s by gains[s] and demap the slice
/// with the modem's AWGN demapper at variance sigma^2 / h^2.
template <typename DemapFn>
std::vector<float> equalized_demap(const std::vector<float>& iq,
                                   const std::vector<float>& gains,
                                   float noise_variance, std::size_t n_bits,
                                   std::size_t bits_per_symbol,
                                   DemapFn demap) {
  LDPC_CHECK(iq.size() == 2 * gains.size());
  LDPC_CHECK(gains.size() * bits_per_symbol >= n_bits);
  LDPC_CHECK(noise_variance > 0.0F);
  std::vector<float> llr;
  llr.reserve(n_bits);
  for (std::size_t s = 0; llr.size() < n_bits; ++s) {
    const float h = std::max(gains[s], kMinGain);
    const std::size_t take = std::min(bits_per_symbol, n_bits - llr.size());
    const auto sym_llr = demap({iq[2 * s] / h, iq[2 * s + 1] / h},
                               noise_variance / (h * h), take);
    llr.insert(llr.end(), sym_llr.begin(), sym_llr.end());
  }
  return llr;
}

}  // namespace

std::vector<float> RayleighChannel::demodulate_qam16(
    const std::vector<float>& iq, const std::vector<float>& gains,
    float noise_variance, std::size_t n_bits) {
  return equalized_demap(iq, gains, noise_variance, n_bits, 4,
                         Qam16Modem::demodulate);
}

std::vector<float> RayleighChannel::demodulate_qam64(
    const std::vector<float>& iq, const std::vector<float>& gains,
    float noise_variance, std::size_t n_bits) {
  return equalized_demap(iq, gains, noise_variance, n_bits, 6,
                         Qam64Modem::demodulate);
}

}  // namespace ldpc
