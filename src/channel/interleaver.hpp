// Block (row-column) channel interleaver.
//
// The fading channel model assumes per-symbol independent gains; a real
// channel is correlated in time, and the interleaver is what makes the
// assumption hold for the decoder. write row-wise, read column-wise —
// adjacent codeword bits end up `rows` symbols apart on the air.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace ldpc {

class BlockInterleaver {
 public:
  /// Geometry must tile the frame exactly: rows * cols == frame length.
  BlockInterleaver(std::size_t rows, std::size_t cols);

  std::size_t size() const { return rows_ * cols_; }

  /// Interleave (transmit side): out[c * rows + r] = in[r * cols + c].
  template <typename T>
  std::vector<T> interleave(const std::vector<T>& in) const {
    LDPC_CHECK_MSG(in.size() == size(), "interleaver frame size mismatch: "
                                            << in.size() << " != " << size());
    std::vector<T> out(in.size());
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c)
        out[c * rows_ + r] = in[r * cols_ + c];
    return out;
  }

  /// Deinterleave (receive side): exact inverse of interleave().
  template <typename T>
  std::vector<T> deinterleave(const std::vector<T>& in) const {
    LDPC_CHECK_MSG(in.size() == size(), "deinterleaver frame size mismatch: "
                                            << in.size() << " != " << size());
    std::vector<T> out(in.size());
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c)
        out[r * cols_ + c] = in[c * rows_ + r];
    return out;
  }

  /// Minimum on-air separation of two bits that were adjacent in the input.
  std::size_t dispersion() const { return rows_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace ldpc
