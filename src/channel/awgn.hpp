// Additive white Gaussian noise channel.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace ldpc {

/// Noise variance (per real dimension) for a given Eb/N0 in dB, code rate,
/// and modulation efficiency (info bits per real symbol dimension):
///   sigma^2 = 1 / (2 * rate * bits_per_dim * 10^(EbN0/10))
/// for unit symbol energy per dimension.
float awgn_noise_variance(float ebn0_db, double code_rate, double bits_per_dim = 1.0);

class AwgnChannel {
 public:
  explicit AwgnChannel(float noise_variance, std::uint64_t seed = 42);

  float noise_variance() const { return noise_variance_; }

  /// y = x + n, n ~ N(0, sigma^2) i.i.d.
  std::vector<float> transmit(const std::vector<float>& symbols);

 private:
  float noise_variance_;
  float sigma_;
  Xoshiro256 rng_;
};

}  // namespace ldpc
