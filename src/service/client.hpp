// Blocking client for the decode service: the test harness and the load
// generator speak the wire protocol through this. Deliberately simple — one
// socket, poll()-bounded reads — because the interesting concurrency lives
// on the server side; a chaos test drives many of these from many threads.
//
// The raw-byte entry points (send_raw) are first-class: chaos tests and the
// malformed-frame corpus hand-craft hostile byte sequences and need to put
// them on the wire verbatim.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "service/wire.hpp"

namespace ldpc::service {

/// A received frame that owns its body bytes (Frame's span aliases the
/// reader's buffer and dies on the next read).
struct OwnedFrame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> body;
};

/// Either a decode response or a typed error — exactly the two ways the
/// server resolves a request.
struct DecodeOutcome {
  bool is_error = false;
  DecodeResponse response;  ///< valid when !is_error
  ErrorResponse error;      ///< valid when is_error
};

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { close(); }
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  /// Connect to host:port; throws ldpc::Error on failure.
  void connect(const std::string& host, std::uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Put bytes on the wire verbatim. Returns false when the connection is
  /// gone (peer reset); never throws on I/O.
  bool send_raw(std::span<const std::uint8_t> bytes);

  /// Next frame from the server, waiting up to `timeout`. nullopt on
  /// timeout, peer close, or a framing error in the server's byte stream
  /// (which would indicate a server bug — the server never sends garbage).
  std::optional<OwnedFrame> read_frame(std::chrono::milliseconds timeout);

  /// Convenience RPC: send one decode request, wait for the frame that
  /// resolves it (matched by request_id; unmatched frames are discarded).
  std::optional<DecodeOutcome> decode(const DecodeRequest& request,
                                      std::chrono::milliseconds timeout);

  /// Round-trip a ping; returns the echoed nonce.
  std::optional<std::uint64_t> ping(std::uint64_t nonce,
                                    std::chrono::milliseconds timeout);

  /// Fetch the server's stats JSON.
  std::optional<std::string> stats(std::chrono::milliseconds timeout);

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace ldpc::service
