#include "service/codec_cache.hpp"

#include <algorithm>

#include "codes/registry.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "util/check.hpp"

namespace ldpc::service {

void DecoderLease::release() {
  if (entry_ && decoder_) entry_->give_back(std::move(decoder_));
  entry_.reset();
  decoder_.reset();
}

DecoderLease CodecEntry::lease() {
  {
    const MutexLock lock(pool_mutex_);
    if (!pool_.empty()) {
      std::unique_ptr<Decoder> decoder = std::move(pool_.back());
      pool_.pop_back();
      return {shared_from_this(), std::move(decoder)};
    }
    ++decoders_built_;
  }
  // Built outside the pool lock: decoder construction allocates message
  // memory proportional to the code size and must not serialize the pool.
  return {shared_from_this(), make_decoder(decoder_name_, *code_, options_)};
}

void CodecEntry::give_back(std::unique_ptr<Decoder> decoder) {
  decoder->set_cancel_token(nullptr);
  const MutexLock lock(pool_mutex_);
  pool_.push_back(std::move(decoder));
}

std::size_t CodecEntry::decoders_built() const {
  const MutexLock lock(pool_mutex_);
  return decoders_built_;
}

CodecCache::CodecCache(std::string decoder_name, DecoderOptions options)
    : decoder_name_(std::move(decoder_name)), options_(options) {}

std::unique_ptr<QCLdpcCode> CodecCache::build_code(const CodecRef& ref) {
  switch (static_cast<CodeStandard>(ref.standard)) {
    case CodeStandard::kWimax: {
      const auto& rates = all_wimax_rates();
      if (ref.rate >= rates.size()) return nullptr;
      const auto& zs = wimax_z_values();
      if (std::find(zs.begin(), zs.end(), static_cast<int>(ref.z)) == zs.end())
        return nullptr;
      return std::make_unique<QCLdpcCode>(
          make_wimax_code(rates[ref.rate], static_cast<int>(ref.z)));
    }
    case CodeStandard::kWifi: {
      if (ref.rate != 0) return nullptr;
      if (ref.z == 27)
        return std::make_unique<QCLdpcCode>(make_wifi_648_half_rate());
      if (ref.z == 81)
        return std::make_unique<QCLdpcCode>(make_wifi_1944_half_rate());
      return nullptr;
    }
    case CodeStandard::kRegistry: {
      const auto& names = external_code_names();
      if (ref.rate >= names.size() || ref.z != 1) return nullptr;
      // external_code() runs the alist import path and caches the result
      // for the process lifetime; copy into an entry-owned code so the
      // cache's ownership story is uniform across standards.
      return std::make_unique<QCLdpcCode>(external_code(names[ref.rate]));
    }
  }
  return nullptr;
}

std::shared_ptr<CodecEntry> CodecCache::resolve(const CodecRef& ref,
                                                WireErrorCode* error) {
  *error = WireErrorCode::kNone;
  std::shared_ptr<Slot> slot;
  bool builder = false;
  {
    const MutexLock lock(mutex_);
    auto& mapped = slots_[ref];
    if (!mapped) {
      mapped = std::make_shared<Slot>();
      // Claimed before the slot is visible to any other thread (they all
      // reach it through this map mutex), so exactly one builder exists.
      mapped->building = true;
      builder = true;
      ++stats_.misses;
    }
    slot = mapped;
  }

  if (!builder) {
    MutexLock lock(slot->mutex);
    if (slot->done) {
      // Fast path; also the retry path after a failed build (entry null).
      if (slot->entry) {
        const MutexLock stats_lock(mutex_);
        ++stats_.hits;
        return slot->entry;
      }
    } else if (slot->building) {
      {
        const MutexLock stats_lock(mutex_);
        ++stats_.coalesced_waits;
      }
      while (!slot->done) lock.wait(slot->ready);
      if (slot->entry) return slot->entry;
    }
    // Build failed (or a previous failure is cached as done-without-entry):
    // this thread retries the build under the slot's building flag.
    if (slot->building) {
      // Another retrier got there first; wait for its verdict.
      while (!slot->done || slot->building) lock.wait(slot->ready);
      if (slot->entry) return slot->entry;
      *error = WireErrorCode::kUnknownCodec;
      return nullptr;
    }
    slot->building = true;
    slot->done = false;
  }

  // Single-flight build, outside every lock: expanding a 2304-bit code or
  // re-importing a registry alist must not stall unrelated codecs.
  std::shared_ptr<CodecEntry> entry;
  std::unique_ptr<QCLdpcCode> code = build_code(ref);
  if (code)
    entry = std::make_shared<CodecEntry>(ref, std::move(code), decoder_name_,
                                         options_);
  {
    const MutexLock lock(slot->mutex);
    slot->entry = entry;
    slot->building = false;
    slot->done = true;
  }
  slot->ready.notify_all();
  if (!entry) {
    const MutexLock lock(mutex_);
    ++stats_.unknown_codecs;
    *error = WireErrorCode::kUnknownCodec;
  }
  return entry;
}

CodecCacheStats CodecCache::stats() const {
  const MutexLock lock(mutex_);
  CodecCacheStats s = stats_;
  s.entries = slots_.size();
  return s;
}

std::vector<CodecRef> CodecCache::all_known_codecs() {
  std::vector<CodecRef> refs;
  const auto& rates = all_wimax_rates();
  for (std::size_t r = 0; r < rates.size(); ++r)
    for (const int z : wimax_z_values())
      refs.push_back({static_cast<std::uint8_t>(CodeStandard::kWimax),
                      static_cast<std::uint8_t>(r),
                      static_cast<std::uint16_t>(z)});
  for (const std::uint16_t z : {std::uint16_t{27}, std::uint16_t{81}})
    refs.push_back({static_cast<std::uint8_t>(CodeStandard::kWifi), 0, z});
  for (std::size_t i = 0; i < external_code_names().size(); ++i)
    refs.push_back({static_cast<std::uint8_t>(CodeStandard::kRegistry),
                    static_cast<std::uint8_t>(i), 1});
  return refs;
}

}  // namespace ldpc::service
