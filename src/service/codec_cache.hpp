// Codec cache: wire CodecRef -> built code + decoder pool, with
// single-flight construction.
//
// Building a QCLdpcCode expands the full Tanner graph (adjacency, edge
// numbering) and a decoder allocates its message memory — milliseconds of
// work and megabytes of state for the big codes. A thundering herd of new
// tenants all naming the same (standard, rate, z) must pay that cost once:
// the first requester builds while later requesters wait on the same entry
// (coalesced), and a failed build is reported to every waiter without
// poisoning the cache (the next request retries).
//
// Each entry owns a pool of ready decoder instances. Decoders carry mutable
// per-call message memory, so a decoder is leased to exactly one decode at
// a time and returned to the pool afterwards; the pool grows on demand up
// to the engine's worker count (more can never be in use at once).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"
#include "core/decoder_factory.hpp"
#include "service/wire.hpp"
#include "util/thread_annotations.hpp"

namespace ldpc::service {

class CodecEntry;

/// RAII decoder lease: returns the decoder to its entry's pool on
/// destruction. Movable, not copyable.
class DecoderLease {
 public:
  DecoderLease() = default;
  DecoderLease(std::shared_ptr<CodecEntry> entry,
               std::unique_ptr<Decoder> decoder)
      : entry_(std::move(entry)), decoder_(std::move(decoder)) {}
  DecoderLease(DecoderLease&&) = default;
  DecoderLease& operator=(DecoderLease&& other) noexcept {
    release();
    entry_ = std::move(other.entry_);
    decoder_ = std::move(other.decoder_);
    return *this;
  }
  DecoderLease(const DecoderLease&) = delete;
  DecoderLease& operator=(const DecoderLease&) = delete;
  ~DecoderLease() { release(); }

  explicit operator bool() const { return decoder_ != nullptr; }
  Decoder& operator*() { return *decoder_; }
  Decoder* operator->() { return decoder_.get(); }

 private:
  void release();

  std::shared_ptr<CodecEntry> entry_;
  std::unique_ptr<Decoder> decoder_;
};

/// One resolved codec: the built code plus its decoder pool.
class CodecEntry : public std::enable_shared_from_this<CodecEntry> {
 public:
  CodecEntry(CodecRef ref, std::unique_ptr<QCLdpcCode> code,
             std::string decoder_name, DecoderOptions options)
      : ref_(ref),
        code_(std::move(code)),
        decoder_name_(std::move(decoder_name)),
        options_(options) {}

  const CodecRef& ref() const { return ref_; }
  const QCLdpcCode& code() const { return *code_; }

  /// Lease a decoder, building a fresh one when the pool is empty.
  DecoderLease lease() LDPC_EXCLUDES(pool_mutex_);

  /// Decoders built over this entry's lifetime (pool growth metric).
  std::size_t decoders_built() const LDPC_EXCLUDES(pool_mutex_);

 private:
  friend class DecoderLease;
  void give_back(std::unique_ptr<Decoder> decoder) LDPC_EXCLUDES(pool_mutex_);

  CodecRef ref_;
  std::unique_ptr<QCLdpcCode> code_;  ///< stable address: decoders borrow it
  std::string decoder_name_;
  DecoderOptions options_;

  mutable Mutex pool_mutex_;
  std::vector<std::unique_ptr<Decoder>> pool_ LDPC_GUARDED_BY(pool_mutex_);
  std::size_t decoders_built_ LDPC_GUARDED_BY(pool_mutex_) = 0;
};

struct CodecCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;           ///< entries actually built
  std::size_t coalesced_waits = 0;  ///< requests that waited on another build
  std::size_t unknown_codecs = 0;
  std::size_t entries = 0;
};

/// The cache itself. Thread-safe; every public method may be called from
/// any thread.
class CodecCache {
 public:
  /// `decoder_name` / `options` configure every decoder the cache builds
  /// (make_decoder names; see core/decoder_factory.hpp).
  explicit CodecCache(std::string decoder_name = "layered-minsum-fixed",
                      DecoderOptions options = {});

  /// Resolve a wire codec reference. Returns nullptr and sets *error to
  /// kUnknownCodec when (standard, rate, z) names no bundled code; never
  /// throws on wire-derived values.
  std::shared_ptr<CodecEntry> resolve(const CodecRef& ref,
                                      WireErrorCode* error)
      LDPC_EXCLUDES(mutex_);

  CodecCacheStats stats() const LDPC_EXCLUDES(mutex_);

  /// Every CodecRef the cache can build (the service's advertised code
  /// table set; tests and the load generator enumerate it).
  static std::vector<CodecRef> all_known_codecs();

 private:
  /// Single-flight slot: holds the build state one herd coalesces on.
  /// Lock order: a slot's mutex is acquired first, the cache-wide mutex_
  /// (stats) nests inside it; no path holds a slot mutex while taking
  /// another slot's.
  struct Slot {
    Mutex mutex;
    std::condition_variable ready;
    bool building LDPC_GUARDED_BY(mutex) = false;
    bool done LDPC_GUARDED_BY(mutex) = false;
    /// Null after a failed build.
    std::shared_ptr<CodecEntry> entry LDPC_GUARDED_BY(mutex);
  };

  /// Build the code named by `ref`, or nullptr for unknown refs.
  static std::unique_ptr<QCLdpcCode> build_code(const CodecRef& ref);

  std::string decoder_name_;
  DecoderOptions options_;

  mutable Mutex mutex_;
  std::map<CodecRef, std::shared_ptr<Slot>> slots_ LDPC_GUARDED_BY(mutex_);
  CodecCacheStats stats_ LDPC_GUARDED_BY(mutex_);
};

}  // namespace ldpc::service
