#include "service/service.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <set>
#include <sstream>
#include <utility>

#include "util/check.hpp"

namespace ldpc::service {
namespace {

/// Grace window after the drain deadline for cancelled decodes to bail at
/// their next layer boundary and for the engine to settle.
constexpr auto kCancelGrace = std::chrono::milliseconds(500);

/// Extra spins of the event loop are cheap; a bounded epoll timeout keeps
/// parked-deadline sweeps and drain bookkeeping moving even when no socket
/// is active.
constexpr int kEpollTimeoutMs = 50;

/// Per-wakeup read budget for one connection: a peer that pipelines faster
/// than we decode cannot monopolize an event-loop tick — level-triggered
/// epoll re-arms and the remainder is read on the next pass, after every
/// other connection had its turn.
constexpr std::size_t kReadBudgetBytes = 64U << 10;

/// Thread-safe errno formatting: std::strerror hands back a pointer into
/// shared static storage. strerror_r's return type differs between glibc
/// (char*) and POSIX (int); the overload pair below accepts either.
[[maybe_unused]] const char* strerror_pick(const char* glibc_result,
                                           const char*) {
  return glibc_result;
}
[[maybe_unused]] const char* strerror_pick(int, const char* buf) {
  return buf;
}

std::string errno_string(int err) {
  char buf[128] = "unknown error";
  return strerror_pick(::strerror_r(err, buf, sizeof(buf)), buf);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  LDPC_CHECK_MSG(flags >= 0, "fcntl(F_GETFL) failed");
  LDPC_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "fcntl(F_SETFL, O_NONBLOCK) failed");
}

/// The engine-factory decoder for service workers: a per-worker cache of
/// per-codec decoder instances. Tasks downcast the engine-provided Decoder
/// to this and fetch the decoder their codec needs, so decoders never
/// migrate between threads (a FaultInjector wired through
/// decoder_options_hook may be thread_local, exactly the chaos-test idiom)
/// and a worker serving one tenant's code never rebuilds it per job.
class WorkerDecoderCache final : public Decoder {
 public:
  WorkerDecoderCache(std::string decoder_name, DecoderOptions options,
                     std::function<void(DecoderOptions&)> hook)
      : decoder_name_(std::move(decoder_name)),
        options_(options),
        hook_(std::move(hook)) {}

  Decoder& decoder_for(const std::shared_ptr<CodecEntry>& entry) {
    auto it = cache_.find(entry.get());
    if (it == cache_.end()) {
      DecoderOptions options = options_;
      if (hook_) hook_(options);  // runs on this worker thread
      auto decoder = make_decoder(decoder_name_, entry->code(), options);
      it = cache_.emplace(entry.get(),
                          CacheEntry{entry, std::move(decoder)}).first;
    }
    return *it->second.decoder;
  }

  /// Book the finished decode so the engine's per-worker accounting
  /// (decoded bits, saturation) reflects the codec that actually ran.
  void record(std::size_t n, const SaturationStats& saturation) {
    last_n_ = n;
    last_saturation_ = saturation;
  }

  DecodeResult decode(std::span<const float> /*llr*/) override {
    // The service submits tasks only; a plain decode has no codec context.
    throw Error("WorkerDecoderCache decodes via service tasks only");
  }
  std::size_t n() const override { return last_n_; }
  std::string name() const override { return "service-worker-cache"; }
  SaturationStats saturation() const override { return last_saturation_; }

 private:
  struct CacheEntry {
    std::shared_ptr<CodecEntry> keep_alive;
    std::unique_ptr<Decoder> decoder;
  };

  std::string decoder_name_;
  DecoderOptions options_;
  std::function<void(DecoderOptions&)> hook_;
  std::map<const CodecEntry*, CacheEntry> cache_;
  std::size_t last_n_ = 0;
  SaturationStats last_saturation_;
};

}  // namespace

struct DecodeService::Connection {
  int fd = -1;
  FrameReader reader;
  std::vector<std::uint8_t> write_buf;
  std::size_t write_off = 0;
  std::uint32_t epoll_events = EPOLLIN;  ///< mask currently registered
  bool closing = false;      ///< flush the write buffer, then close
  bool read_closed = false;  ///< fatal framing: no further reads
  /// Reads paused for backpressure (a request parked in throttle_tenant's
  /// full wait line); frames already buffered stay buffered until resume.
  bool throttled = false;
  std::uint32_t throttle_tenant = 0;
  std::set<std::uint64_t> pending_serials;

  explicit Connection(std::size_t max_frame) : reader(max_frame) {}
  std::size_t queued_bytes() const { return write_buf.size() - write_off; }
};

struct DecodeService::PendingJob {
  std::uint64_t serial = 0;
  std::uint64_t request_id = 0;
  std::uint32_t tenant_id = 0;
  int conn_fd = -1;  ///< -1 once the owning connection died
  std::shared_ptr<CodecEntry> codec;
  std::vector<float> llr;
  std::optional<Clock::time_point> deadline;
  CancelToken token;
  bool submitted = false;  ///< false while parked
};

DecodeService::DecodeService(ServiceConfig config)
    : config_(std::move(config)) {
  // Per-tenant overload policy lives in admission control; the engine queue
  // is the global backstop and must never block the event loop (kBlock) or
  // bypass the service's exactly-once completion bookkeeping (kShedOldest
  // completes slots behind the service's back).
  config_.engine.overload_policy = OverloadPolicy::kRejectNewest;
  admission_ = AdmissionController(config_.default_tenant);
  for (const auto& [id, tenant_config] : config_.tenants)
    admission_.configure_tenant(id, tenant_config);
  codecs_ = std::make_unique<CodecCache>(config_.decoder_name,
                                         config_.decoder_options);
}

DecodeService::~DecodeService() {
  if (loop_thread_.joinable())
    shutdown_after(std::chrono::seconds(1));
  engine_.reset();  // joins workers; nothing posts completions after this
  if (event_fd_ >= 0) ::close(event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void DecodeService::start() {
  LDPC_CHECK_MSG(!loop_thread_.joinable(), "service already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  LDPC_CHECK_MSG(listen_fd_ >= 0, "socket() failed: " << errno_string(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  LDPC_CHECK_MSG(
      ::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) == 1,
      "bad bind address '" << config_.bind_address << "'");
  LDPC_CHECK_MSG(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind(" << config_.bind_address << ":" << config_.port
              << ") failed: " << errno_string(errno));
  LDPC_CHECK_MSG(::listen(listen_fd_, 128) == 0,
                 "listen() failed: " << errno_string(errno));
  socklen_t addr_len = sizeof(addr);
  LDPC_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                           &addr_len) == 0);
  bound_port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  LDPC_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  LDPC_CHECK_MSG(event_fd_ >= 0, "eventfd failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  LDPC_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  ev.data.fd = event_fd_;
  LDPC_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) == 0);

  const std::string decoder_name = config_.decoder_name;
  const DecoderOptions options = config_.decoder_options;
  const auto hook = config_.decoder_options_hook;
  DecoderFactory factory = [decoder_name, options, hook] {
    return std::make_unique<WorkerDecoderCache>(decoder_name, options, hook);
  };
  engine_ = std::make_unique<BatchEngine>(std::move(factory), config_.engine);

  loop_thread_ = std::thread([this] { loop_main(); });
}

void DecodeService::wake_loop() {
  if (event_fd_ < 0) return;
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; the result only signals
  // "would block", which is fine.
  [[maybe_unused]] const auto n = ::write(event_fd_, &one, sizeof(one));
}

void DecodeService::post_completion(std::uint64_t serial,
                                    const DecodeResult& result,
                                    const SaturationStats& saturation) {
  {
    const MutexLock lock(completions_mutex_);
    completions_.push_back(Completion{serial, result, saturation});
  }
  wake_loop();
}

void DecodeService::loop_main() {
  std::array<epoll_event, 64> events;
  for (;;) {
    const int ready = ::epoll_wait(epoll_fd_, events.data(),
                                   static_cast<int>(events.size()),
                                   kEpollTimeoutMs);
    if (ready < 0 && errno != EINTR) break;

    const MutexLock lock(state_mutex_);
    graveyard_.clear();  // last tick's closed connections; see close_connection
    for (int i = 0; i < std::max(ready, 0); ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      if (ev.data.fd == listen_fd_) {
        if (!draining_) handle_accept();
        continue;
      }
      if (ev.data.fd == event_fd_) {
        std::uint64_t drained = 0;
        while (::read(event_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      const auto it = conns_.find(ev.data.fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Connection& conn = *it->second;
      if (ev.events & (EPOLLHUP | EPOLLERR)) {
        close_connection(conn.fd, /*evicted=*/false, /*by_peer=*/true);
        continue;
      }
      if ((ev.events & EPOLLIN) && !conn.read_closed) handle_readable(conn);
      // The read handler may have closed the connection; re-look it up.
      if (conns_.count(ev.data.fd) && (ev.events & EPOLLOUT))
        handle_writable(*conns_[ev.data.fd]);
    }

    process_completions();

    // Sweep parked requests whose deadline passed while waiting: they must
    // resolve as kDeadlineExpired, not rot in the wait line.
    const auto now = Clock::now();
    for (auto& [tenant_id, queue] : parked_) {
      for (auto it = queue.begin(); it != queue.end();) {
        const auto pending_it = pending_.find(*it);
        if (pending_it == pending_.end()) {
          it = queue.erase(it);
          continue;
        }
        const auto& job = pending_it->second;
        if (job->conn_fd < 0) {
          admission_.on_park_abandoned(tenant_id);
          pending_.erase(pending_it);
          it = queue.erase(it);
          continue;
        }
        if (job->deadline && now >= *job->deadline) {
          const auto conn_it = conns_.find(job->conn_fd);
          if (conn_it != conns_.end()) {
            // Raw pointer: send_bytes may evict this very connection, which
            // invalidates conn_it (the object itself outlives the tick via
            // the graveyard).
            Connection* c = conn_it->second.get();
            DecodeResponse response;
            response.request_id = job->request_id;
            response.status =
                static_cast<std::uint8_t>(DecodeStatus::kDeadlineExpired);
            send_bytes(*c, encode_decode_response(response));
            c->pending_serials.erase(job->serial);
            ++counters_.responses_sent;
          }
          ++counters_.jobs_completed;
          ++counters_.jobs_deadline_expired;
          admission_.on_park_abandoned(tenant_id);
          pending_.erase(pending_it);
          it = queue.erase(it);
          continue;
        }
        ++it;
      }
      // The sweep may have emptied this tenant's wait line — paused
      // connections can resume (their buffered requests will re-park or be
      // refused, but they are *answered*).
      maybe_unthrottle(tenant_id);
    }

    if (draining_ && listen_fd_ >= 0) {
      // Stop accepting: close the listening socket once, the moment the
      // drain begins. Connected clients keep their sockets for responses.
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (flush_requested_) {
      flush_requested_ = false;
      flush_for_drain();
    }
    if (draining_ && pending_.empty()) drained_cv_.notify_all();
    if (stop_requested_) {
      // Best-effort final flush, then close every connection.
      std::vector<int> fds;
      fds.reserve(conns_.size());
      for (const auto& [fd, conn] : conns_) fds.push_back(fd);
      for (const int fd : fds) {
        const auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // flush error closed it already
        handle_writable(*it->second);
        close_connection(fd, /*evicted=*/false, /*by_peer=*/false);
      }
      graveyard_.clear();
      counters_.connections_active = 0;
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      stopped_ = true;
      drained_cv_.notify_all();
      return;
    }
  }
}

void DecodeService::handle_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: try again next wake
    if (conns_.size() >= config_.max_connections) {
      ++counters_.connections_refused;
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.send_buffer_bytes > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.send_buffer_bytes,
                   sizeof(config_.send_buffer_bytes));
    auto conn = std::make_unique<Connection>(config_.max_frame_bytes);
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    ++counters_.connections_accepted;
    ++counters_.connections_active;
  }
}

void DecodeService::handle_readable(Connection& conn) {
  std::uint8_t chunk[16384];
  std::size_t budget = kReadBudgetBytes;
  while (budget > 0 && !conn.throttled) {
    const ssize_t n =
        ::read(conn.fd, chunk, std::min(sizeof(chunk), budget));
    if (n > 0) {
      budget -= static_cast<std::size_t>(n);
      counters_.bytes_read += static_cast<std::size_t>(n);
      if (!conn.reader.push(
              std::span<const std::uint8_t>(chunk,
                                            static_cast<std::size_t>(n)))) {
        break;  // fatal already latched; process_frames reports it
      }
      process_frames(conn);
      if (!conns_.count(conn.fd)) return;  // closed by a fatal frame
      if (conn.read_closed) return;
      continue;
    }
    if (n == 0) {
      ++counters_.connections_closed_by_peer;
      close_connection(conn.fd, /*evicted=*/false, /*by_peer=*/true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(conn.fd, /*evicted=*/false, /*by_peer=*/true);
    return;
  }
  process_frames(conn);
}

void DecodeService::process_frames(Connection& conn) {
  for (;;) {
    // Backpressure: once a frame of this batch parked, leave the rest
    // buffered — they are replayed by unthrottle_tenant when the tenant can
    // take work again.
    if (conn.throttled) return;
    Frame frame;
    const FrameReader::Status status = conn.reader.next(&frame);
    if (status == FrameReader::Status::kNeedMore) return;
    if (status == FrameReader::Status::kFatal) {
      // One typed goodbye, then the connection is unusable: after a framing
      // error there is no way to find the next frame boundary.
      ++counters_.malformed_frames;
      ++counters_.connections_fatal_framing;
      send_error(conn, 0, conn.reader.fatal_error(),
                 "unrecoverable framing error");
      conn.read_closed = true;
      conn.closing = true;
      if (conn.queued_bytes() == 0) {
        close_connection(conn.fd, /*evicted=*/false, /*by_peer=*/false);
      } else {
        update_epoll(conn);  // drop EPOLLIN: the goodbye flush is all that's left
      }
      return;
    }
    ++counters_.frames_received;
    switch (frame.type) {
      case FrameType::kDecodeRequest: {
        DecodeRequest request;
        const WireErrorCode err = parse_decode_request(frame.body, &request);
        if (err != WireErrorCode::kNone) {
          ++counters_.malformed_frames;
          send_error(conn, request.request_id, err, "malformed decode request");
          break;
        }
        handle_decode_request(conn, std::move(request));
        break;
      }
      case FrameType::kPing: {
        std::uint64_t nonce = 0;
        const WireErrorCode err = parse_ping(frame.body, &nonce);
        if (err != WireErrorCode::kNone) {
          ++counters_.malformed_frames;
          send_error(conn, 0, err, "malformed ping");
          break;
        }
        send_bytes(conn, encode_pong(nonce));
        break;
      }
      case FrameType::kStatsRequest: {
        if (!frame.body.empty()) {
          ++counters_.malformed_frames;
          send_error(conn, 0, WireErrorCode::kTrailingBytes,
                     "stats request carries no body");
          break;
        }
        send_bytes(conn, encode_stats_response(build_stats_json()));
        break;
      }
      default:
        ++counters_.malformed_frames;
        send_error(conn, 0, WireErrorCode::kBadType,
                   "frame type not accepted by the server");
        break;
    }
    if (!conns_.count(conn.fd)) return;  // a handler evicted the connection
  }
}

void DecodeService::handle_decode_request(Connection& conn,
                                          DecodeRequest&& request) {
  ++counters_.requests_received;
  if (draining_) {
    ++counters_.jobs_refused_draining;
    send_error(conn, request.request_id, WireErrorCode::kDraining,
               "service is draining");
    return;
  }

  WireErrorCode codec_error = WireErrorCode::kNone;
  std::shared_ptr<CodecEntry> entry =
      codecs_->resolve(request.codec, &codec_error);
  if (!entry) {
    send_error(conn, request.request_id, codec_error,
               to_string(request.codec) + " names no bundled code");
    return;
  }
  if (request.llr.size() != entry->code().n()) {
    send_error(conn, request.request_id, WireErrorCode::kLlrCountMismatch,
               "expected " + std::to_string(entry->code().n()) + " LLRs, got " +
                   std::to_string(request.llr.size()));
    return;
  }

  const auto now = Clock::now();
  std::optional<Clock::time_point> deadline;
  if (request.deadline_us > 0)
    deadline = now + std::chrono::microseconds(request.deadline_us);
  const bool dead_on_arrival = deadline && now >= *deadline;

  const AdmitDecision decision =
      admission_.admit(request.tenant_id, now, dead_on_arrival);
  switch (decision) {
    case AdmitDecision::kDeadlineExpired:
      ++counters_.jobs_deadline_refused;
      send_error(conn, request.request_id, WireErrorCode::kDeadlineUnmeetable,
                 "deadline expired before admission");
      return;
    case AdmitDecision::kRateLimited:
      ++counters_.jobs_rate_limited;
      send_error(conn, request.request_id, WireErrorCode::kRateLimited,
                 "tenant over its request rate");
      return;
    case AdmitDecision::kQuotaExceeded:
      ++counters_.jobs_quota_rejected;
      send_error(conn, request.request_id, WireErrorCode::kQuotaExceeded,
                 "tenant in-flight quota exhausted");
      return;
    case AdmitDecision::kAdmit:
    case AdmitDecision::kPark:
    case AdmitDecision::kParkShedOldest:
      break;
  }

  auto job = std::make_shared<PendingJob>();
  job->serial = next_serial_++;
  job->request_id = request.request_id;
  job->tenant_id = request.tenant_id;
  job->conn_fd = conn.fd;
  job->codec = std::move(entry);
  job->llr = std::move(request.llr);
  job->deadline = deadline;
  pending_.emplace(job->serial, job);
  conn.pending_serials.insert(job->serial);

  if (decision == AdmitDecision::kAdmit) {
    submit_to_engine(job);
    return;
  }

  if (decision == AdmitDecision::kParkShedOldest) {
    // The tenant's wait line is at its cap: evict its *oldest* parked
    // request (answered with a typed shed error — never silence) to make
    // room. Only this tenant's line is touched.
    auto& queue = parked_[request.tenant_id];
    while (!queue.empty()) {
      const std::uint64_t victim_serial = queue.front();
      queue.pop_front();
      const auto it = pending_.find(victim_serial);
      if (it == pending_.end()) continue;
      const auto& victim = it->second;
      admission_.on_shed(request.tenant_id);
      ++counters_.jobs_shed;
      const auto conn_it = conns_.find(victim->conn_fd);
      if (conn_it != conns_.end()) {
        Connection* c = conn_it->second.get();
        send_error(*c, victim->request_id, WireErrorCode::kShedOverload,
                   "evicted by a newer request (shed-oldest)");
        c->pending_serials.erase(victim_serial);
      }
      pending_.erase(it);
      break;
    }
  }
  ++counters_.jobs_parked;
  parked_[request.tenant_id].push_back(job->serial);
  // kBlock is wire-level backpressure: the tenant is over capacity and now
  // owes this connection a parked answer, so stop reading from it — an
  // open-loop sender backs up in its own socket buffers instead of burning
  // the event loop on work that would only park. kShedOldest keeps reading:
  // newest-wins is that policy's contract, and its self-degradation
  // mechanism is the shed, not the pause. (A connection interleaving
  // tenants shares a kBlock pause — per-connection ordering makes that
  // coupling inherent.)
  if (admission_.tenant_policy(request.tenant_id) == OverloadPolicy::kBlock)
    throttle_connection(conn, request.tenant_id);
}

void DecodeService::throttle_connection(Connection& conn,
                                        std::uint32_t tenant_id) {
  if (conn.throttled) return;
  conn.throttled = true;
  conn.throttle_tenant = tenant_id;
  throttled_fds_[tenant_id].insert(conn.fd);
  ++counters_.read_throttle_events;
  update_epoll(conn);
}

void DecodeService::unthrottle_tenant(std::uint32_t tenant_id) {
  const auto it = throttled_fds_.find(tenant_id);
  if (it == throttled_fds_.end()) return;
  const std::vector<int> fds(it->second.begin(), it->second.end());
  throttled_fds_.erase(it);
  for (const int fd : fds) {
    const auto conn_it = conns_.find(fd);
    if (conn_it == conns_.end()) continue;
    Connection* c = conn_it->second.get();
    c->throttled = false;
    update_epoll(*c);
    // Frames that arrived before the pause are still buffered; epoll will
    // not re-announce them, so replay now. This may re-throttle or even
    // close the connection — both paths re-record their own state.
    process_frames(*c);
  }
}

void DecodeService::maybe_unthrottle(std::uint32_t tenant_id) {
  if (throttled_fds_.find(tenant_id) == throttled_fds_.end()) return;
  const auto parked_it = parked_.find(tenant_id);
  const bool line_empty =
      parked_it == parked_.end() || parked_it->second.empty();
  if (line_empty || admission_.has_capacity(tenant_id))
    unthrottle_tenant(tenant_id);
}

void DecodeService::submit_to_engine(const std::shared_ptr<PendingJob>& job) {
  job->submitted = true;
  if (job->deadline) job->token.arm_deadline(*job->deadline);
  DecodeService* service = this;
  JobOptions options;
  options.deadline = job->deadline;
  auto task = [service, job](Decoder& worker_decoder) -> DecodeResult {
    DecodeResult result;
    SaturationStats saturation;
    try {
      if (job->token.expired()) {
        // Expired while queued: resolve without touching a codec decoder.
        result.status = DecodeStatus::kDeadlineExpired;
      } else {
        auto& cache = dynamic_cast<WorkerDecoderCache&>(worker_decoder);
        Decoder& decoder = cache.decoder_for(job->codec);
        decoder.set_cancel_token(&job->token);
        result = decoder.decode(job->llr);
        saturation = decoder.saturation();
        decoder.set_cancel_token(nullptr);
        cache.record(decoder.n(), saturation);
      }
    } catch (...) {
      // The task must never throw (a throwing task strikes the worker and
      // would leave the request unresolved): surface as a watchdog abort.
      result = DecodeResult{};
      result.status = DecodeStatus::kWatchdogAbort;
    }
    service->post_completion(job->serial, result, saturation);
    return result;
  };
  const SubmitStatus status =
      engine_->submit_task(job->serial, std::move(task), options, nullptr);
  if (!submit_accepted(status)) {
    // Engine queue full (global backstop) or engine stopped: resolve now.
    ++counters_.jobs_engine_rejected;
    admission_.on_admit_failed(job->tenant_id);
    maybe_unthrottle(job->tenant_id);
    const auto conn_it = conns_.find(job->conn_fd);
    if (conn_it != conns_.end()) {
      Connection* c = conn_it->second.get();
      send_error(*c, job->request_id, WireErrorCode::kOverloaded,
                 "decode queue full");
      c->pending_serials.erase(job->serial);
    }
    pending_.erase(job->serial);
    return;
  }
  ++counters_.jobs_admitted;
}

void DecodeService::process_completions() {
  std::vector<Completion> batch;
  {
    const MutexLock lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (const Completion& completion : batch) {
    const auto it = pending_.find(completion.serial);
    if (it == pending_.end()) continue;
    const std::shared_ptr<PendingJob> job = it->second;
    pending_.erase(it);
    ++counters_.jobs_completed;
    if (completion.result.status == DecodeStatus::kDeadlineExpired)
      ++counters_.jobs_deadline_expired;
    const auto conn_it = conns_.find(job->conn_fd);
    if (conn_it != conns_.end()) {
      Connection* c = conn_it->second.get();
      DecodeResponse response;
      response.request_id = job->request_id;
      response.status = static_cast<std::uint8_t>(completion.result.status);
      response.flags = completion.result.converged ? 1 : 0;
      response.iterations =
          static_cast<std::uint16_t>(completion.result.iterations);
      response.bit_count =
          static_cast<std::uint32_t>(completion.result.hard_bits.size());
      response.packed_bits = pack_bits(completion.result.hard_bits);
      send_bytes(*c, encode_decode_response(response));
      c->pending_serials.erase(job->serial);
      ++counters_.responses_sent;
    }
    if (admission_.on_complete(job->tenant_id)) unpark_tenant(job->tenant_id);
    maybe_unthrottle(job->tenant_id);
  }
}

void DecodeService::unpark_tenant(std::uint32_t tenant_id) {
  const auto queue_it = parked_.find(tenant_id);
  if (queue_it == parked_.end()) return;
  auto& queue = queue_it->second;
  while (!queue.empty() && admission_.has_capacity(tenant_id)) {
    const std::uint64_t serial = queue.front();
    queue.pop_front();
    const auto it = pending_.find(serial);
    if (it == pending_.end()) continue;
    const std::shared_ptr<PendingJob> job = it->second;
    if (job->conn_fd < 0 ||
        (job->deadline && Clock::now() >= *job->deadline)) {
      admission_.on_park_abandoned(tenant_id);
      const auto conn_it = conns_.find(job->conn_fd);
      if (conn_it != conns_.end()) {
        Connection* c = conn_it->second.get();
        DecodeResponse response;
        response.request_id = job->request_id;
        response.status =
            static_cast<std::uint8_t>(DecodeStatus::kDeadlineExpired);
        send_bytes(*c, encode_decode_response(response));
        c->pending_serials.erase(serial);
        ++counters_.responses_sent;
        ++counters_.jobs_completed;
        ++counters_.jobs_deadline_expired;
      }
      pending_.erase(it);
      continue;
    }
    admission_.on_unparked(tenant_id);
    submit_to_engine(job);
  }
}

void DecodeService::flush_for_drain() {
  // Deadline passed with work still pending. Parked requests have never
  // touched the engine: answer them kDeadlineExpired directly. Submitted
  // jobs get their cancel token tripped so cooperative decoders bail at the
  // next layer boundary and resolve through the normal completion path.
  for (auto& [tenant_id, queue] : parked_) {
    for (const std::uint64_t serial : queue) {
      const auto it = pending_.find(serial);
      if (it == pending_.end()) continue;
      const auto& job = it->second;
      admission_.on_park_abandoned(tenant_id);
      const auto conn_it = conns_.find(job->conn_fd);
      if (conn_it != conns_.end()) {
        Connection* c = conn_it->second.get();
        DecodeResponse response;
        response.request_id = job->request_id;
        response.status =
            static_cast<std::uint8_t>(DecodeStatus::kDeadlineExpired);
        send_bytes(*c, encode_decode_response(response));
        c->pending_serials.erase(serial);
        ++counters_.responses_sent;
      }
      ++counters_.jobs_completed;
      ++counters_.jobs_deadline_expired;
      ++counters_.jobs_flushed_at_drain;
      pending_.erase(it);
    }
    queue.clear();
  }
  for (auto& [serial, job] : pending_) {
    job->token.cancel();
    ++drain_cancelled_;
  }
  // Resume every paused connection: the wait lines are gone, and requests
  // still buffered on the wire deserve a typed kDraining refusal rather
  // than a silent close.
  std::vector<std::uint32_t> paused;
  paused.reserve(throttled_fds_.size());
  for (const auto& [tenant_id, fds] : throttled_fds_) paused.push_back(tenant_id);
  for (const std::uint32_t tenant_id : paused) unthrottle_tenant(tenant_id);
}

void DecodeService::send_error(Connection& conn, std::uint64_t request_id,
                               WireErrorCode code, const std::string& detail) {
  ErrorResponse error;
  error.request_id = request_id;
  error.code = code;
  error.detail = detail;
  send_bytes(conn, encode_error_response(error));
  ++counters_.errors_sent;
}

void DecodeService::send_bytes(Connection& conn,
                               std::vector<std::uint8_t> bytes) {
  if (conn.queued_bytes() + bytes.size() > config_.max_write_buffer) {
    // A client that stopped reading does not get to grow our heap: evict.
    close_connection(conn.fd, /*evicted=*/true, /*by_peer=*/false);
    return;
  }
  if (conn.write_off > 0 && conn.write_off >= conn.write_buf.size() / 2) {
    conn.write_buf.erase(
        conn.write_buf.begin(),
        conn.write_buf.begin() + static_cast<std::ptrdiff_t>(conn.write_off));
    conn.write_off = 0;
  }
  conn.write_buf.insert(conn.write_buf.end(), bytes.begin(), bytes.end());
  handle_writable(conn);
}

void DecodeService::handle_writable(Connection& conn) {
  while (conn.queued_bytes() > 0) {
    const ssize_t n = ::write(conn.fd, conn.write_buf.data() + conn.write_off,
                              conn.queued_bytes());
    if (n > 0) {
      conn.write_off += static_cast<std::size_t>(n);
      counters_.bytes_written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_connection(conn.fd, /*evicted=*/false, /*by_peer=*/true);
    return;
  }
  if (conn.queued_bytes() == 0) {
    conn.write_buf.clear();
    conn.write_off = 0;
    if (conn.closing) {
      close_connection(conn.fd, /*evicted=*/false, /*by_peer=*/false);
      return;
    }
  }
  update_epoll(conn);
}

void DecodeService::update_epoll(Connection& conn) {
  const std::uint32_t desired =
      ((conn.throttled || conn.read_closed) ? 0U : EPOLLIN) |
      (conn.queued_bytes() > 0 ? EPOLLOUT : 0U);
  if (desired == conn.epoll_events) return;
  conn.epoll_events = desired;
  epoll_event ev{};
  ev.events = desired;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void DecodeService::close_connection(int fd, bool evicted, bool by_peer) {
  (void)by_peer;
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if (evicted) ++counters_.connections_evicted_slow;
  if (conn.throttled) {
    const auto paused_it = throttled_fds_.find(conn.throttle_tenant);
    if (paused_it != throttled_fds_.end()) {
      paused_it->second.erase(fd);
      if (paused_it->second.empty()) throttled_fds_.erase(paused_it);
    }
  }
  // Orphan this connection's jobs. Parked ones are swept out of the wait
  // lines lazily (the sweep sees conn_fd == -1); submitted ones complete
  // normally with the response dropped.
  for (const std::uint64_t serial : conn.pending_serials) {
    const auto pending_it = pending_.find(serial);
    if (pending_it != pending_.end()) pending_it->second->conn_fd = -1;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conn.fd = -1;
  // Defer destruction one tick: a handler higher in the call stack may
  // still hold a reference to this Connection (send_bytes evicting the very
  // connection it was writing to).
  graveyard_.push_back(std::move(it->second));
  conns_.erase(it);
  if (counters_.connections_active > 0) --counters_.connections_active;
}

std::string DecodeService::build_stats_json() {
  // counters_ and friends are already under state_mutex_ (we are on the
  // loop thread); the engine snapshot is internally consistent (tear-free
  // by construction — see BatchEngine::snapshot()).
  const EngineMetrics engine = engine_->snapshot();
  const CodecCacheStats codec = codecs_->stats();
  std::ostringstream os;
  os << "{";
  os << "\"jobs_admitted\": " << counters_.jobs_admitted
     << ", \"jobs_completed\": " << counters_.jobs_completed
     << ", \"jobs_deadline_expired\": " << counters_.jobs_deadline_expired
     << ", \"jobs_shed\": " << counters_.jobs_shed
     << ", \"jobs_rate_limited\": " << counters_.jobs_rate_limited
     << ", \"jobs_quota_rejected\": " << counters_.jobs_quota_rejected
     << ", \"malformed_frames\": " << counters_.malformed_frames
     << ", \"connections_active\": " << counters_.connections_active;
  os << ", \"engine\": {\"jobs_completed\": " << engine.jobs_completed
     << ", \"queue_mean_occupancy\": " << engine.queue_mean_occupancy
     << ", \"latency_p50_us\": " << engine.latency.p50_us
     << ", \"latency_p95_us\": " << engine.latency.p95_us
     << ", \"latency_p99_us\": " << engine.latency.p99_us << "}";
  os << ", \"codec_cache\": {\"entries\": " << codec.entries
     << ", \"hits\": " << codec.hits << ", \"misses\": " << codec.misses
     << ", \"coalesced_waits\": " << codec.coalesced_waits << "}";
  os << ", \"tenants\": [";
  bool first = true;
  for (const TenantStats& t : admission_.stats()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"tenant\": " << t.tenant_id << ", \"policy\": \""
       << ldpc::to_string(t.policy) << "\", \"admitted\": " << t.admitted
       << ", \"in_flight\": " << t.in_flight << ", \"parked\": " << t.parked
       << ", \"rate_limited\": " << t.rate_limited
       << ", \"quota_rejected\": " << t.quota_rejected
       << ", \"shed\": " << t.shed << ", \"completed\": " << t.completed
       << "}";
  }
  os << "]}";
  return os.str();
}

ServiceStats DecodeService::stats() const {
  ServiceStats out;
  {
    const MutexLock lock(state_mutex_);
    out = counters_;
    out.tenants = admission_.stats();
  }
  if (codecs_) out.codec = codecs_->stats();
  if (engine_) out.engine = engine_->snapshot();
  return out;
}

ShutdownReport DecodeService::shutdown(Clock::time_point deadline) {
  const MutexLock shutdown_lock(shutdown_mutex_);
  if (shutdown_done_) return shutdown_report_;
  ShutdownReport report;
  if (!loop_thread_.joinable()) {
    shutdown_done_ = true;
    shutdown_report_ = report;
    return report;
  }

  {
    const MutexLock lock(state_mutex_);
    draining_ = true;
  }
  wake_loop();
  {
    MutexLock lock(state_mutex_);
    while (!pending_.empty()) {
      if (lock.wait_until(drained_cv_, deadline) == std::cv_status::timeout)
        break;
    }
    report.drained_clean = pending_.empty();
    if (!report.drained_clean) flush_requested_ = true;
  }
  if (!report.drained_clean) {
    wake_loop();
    MutexLock lock(state_mutex_);
    const auto grace_deadline = Clock::now() + kCancelGrace;
    while (!pending_.empty()) {
      if (lock.wait_until(drained_cv_, grace_deadline) ==
          std::cv_status::timeout)
        break;
    }
    report.parked_flushed = counters_.jobs_flushed_at_drain;
    report.cancelled_in_flight = drain_cancelled_;
  }
  // Engine-level drain: any job still running ignored its cancel token (or
  // is wedged); report it instead of hanging.
  const DrainReport engine_drain =
      engine_->drain_until(Clock::now() + std::chrono::milliseconds(100));
  report.stragglers = engine_drain.outstanding;
  report.straggler_frames = engine_drain.straggler_frames;

  {
    const MutexLock lock(state_mutex_);
    stop_requested_ = true;
  }
  wake_loop();
  loop_thread_.join();
  shutdown_done_ = true;
  shutdown_report_ = report;
  return report;
}

}  // namespace ldpc::service
