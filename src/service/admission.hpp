// Per-tenant admission control for the decode service.
//
// Three gates, evaluated in order for every well-formed request:
//
//   1. deadline   — a request whose relative deadline cannot be met even if
//                   it ran immediately is refused at the door
//                   (kDeadlineUnmeetable) instead of consuming a worker;
//   2. rate       — a token bucket (rate_per_sec, burst) smooths each
//                   tenant's arrival process; an empty bucket refuses the
//                   request (kRateLimited);
//   3. occupancy  — each tenant holds at most max_in_flight jobs inside the
//                   engine. At quota, the tenant's *overload policy* — the
//                   same kBlock / kRejectNewest / kShedOldest taxonomy the
//                   BatchEngine queue uses — decides what happens:
//
//       kBlock        — the request parks in the tenant's bounded wait line
//                       (wire-level backpressure: it is answered when
//                       capacity frees). A full wait line refuses with
//                       kQuotaExceeded — backpressure, not unbounded memory.
//       kRejectNewest — the request is refused immediately (kQuotaExceeded).
//       kShedOldest   — the request parks; if the wait line is full the
//                       *oldest* parked request is evicted and answered
//                       kShedOverload. A bursty tenant degrades itself —
//                       its stale requests die first — without touching any
//                       other tenant's line.
//
// The controller is a pure decision + accounting machine: it owns counters
// and buckets, never sockets or jobs. The service owns the actual parked
// request objects and calls back in (on_admitted / on_parked / on_unparked
// / on_shed / on_complete) so the controller's occupancy view stays exact.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <vector>

#include "runtime/job_queue.hpp"
#include "service/wire.hpp"

namespace ldpc::service {

using Clock = std::chrono::steady_clock;

struct TenantConfig {
  /// Token-bucket refill rate; 0 disables rate limiting for the tenant.
  double rate_per_sec = 0.0;
  /// Bucket depth: how large a burst passes the rate gate unthrottled.
  double burst = 32.0;
  /// Jobs this tenant may hold inside the engine at once.
  std::size_t max_in_flight = 16;
  /// Bound on the tenant's parked wait line (kBlock / kShedOldest).
  std::size_t max_parked = 32;
  /// What quota exhaustion does to a new request (see file comment).
  OverloadPolicy policy = OverloadPolicy::kBlock;
};

/// Verdict for one request at the admission door.
enum class AdmitDecision {
  kAdmit,            ///< submit to the engine now (in-flight slot taken)
  kPark,             ///< append to the tenant's wait line
  kParkShedOldest,   ///< evict the tenant's oldest parked request
                     ///< (answer it kShedOverload), then park this one
  kRateLimited,      ///< refuse: token bucket empty
  kQuotaExceeded,    ///< refuse: quota hit and policy refuses / line full
  kDeadlineExpired,  ///< refuse: deadline unmeetable at arrival
};

const char* to_string(AdmitDecision decision);

struct TenantStats {
  std::uint32_t tenant_id = 0;
  std::size_t requests = 0;
  std::size_t admitted = 0;  ///< includes unparked promotions
  std::size_t parked = 0;    ///< currently waiting
  std::size_t in_flight = 0; ///< currently inside the engine
  std::size_t rate_limited = 0;
  std::size_t quota_rejected = 0;
  std::size_t shed = 0;
  std::size_t deadline_refused = 0;
  std::size_t completed = 0;
  OverloadPolicy policy = OverloadPolicy::kBlock;
};

class AdmissionController {
 public:
  explicit AdmissionController(TenantConfig default_config = {})
      : default_config_(default_config) {}

  /// Per-tenant overrides; unknown tenants get the default config.
  void configure_tenant(std::uint32_t tenant_id, const TenantConfig& config);

  /// Evaluate the gates for one arriving request. Counter updates for the
  /// refusal outcomes happen here; kAdmit takes the in-flight slot, kPark /
  /// kParkShedOldest reserve a wait-line slot (the service must follow up
  /// with on_shed for the evicted request when told to shed).
  AdmitDecision admit(std::uint32_t tenant_id, Clock::time_point now,
                      bool deadline_already_expired);

  /// The service evicted one parked request of `tenant_id` (kParkShedOldest
  /// follow-up, or a drain-time flush).
  void on_shed(std::uint32_t tenant_id);

  /// A parked request was promoted into the engine.
  void on_unparked(std::uint32_t tenant_id);

  /// An admitted request never made it into the engine (queue full at the
  /// global backstop): frees the in-flight slot without counting a
  /// completion.
  void on_admit_failed(std::uint32_t tenant_id);

  /// A parked request died without running (client disconnect, drain).
  void on_park_abandoned(std::uint32_t tenant_id);

  /// An in-flight job finished (any outcome). Returns true if the tenant
  /// has parked requests and a free in-flight slot — the service should
  /// unpark its oldest waiter.
  bool on_complete(std::uint32_t tenant_id);

  /// True when the tenant can take another in-flight job right now.
  bool has_capacity(std::uint32_t tenant_id) const;

  /// The tenant's configured overload policy (the default config's policy
  /// for tenants never seen before).
  OverloadPolicy tenant_policy(std::uint32_t tenant_id) const;

  std::vector<TenantStats> stats() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    Clock::time_point last{};
    bool primed = false;
  };
  struct Tenant {
    TenantConfig config;
    Bucket bucket;
    TenantStats stats;
  };

  Tenant& tenant(std::uint32_t tenant_id);

  TenantConfig default_config_;
  std::map<std::uint32_t, Tenant> tenants_;
};

}  // namespace ldpc::service
