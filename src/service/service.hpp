// Network-facing decode service: a non-blocking (epoll) TCP front end over
// the runtime BatchEngine.
//
// Layering, wire to decoder:
//
//   socket bytes -> FrameReader (hardened framing; fatal errors close)
//                -> typed frame parse (malformed -> kError response)
//                -> codec cache resolve (unknown codec -> kError)
//                -> admission control (deadline / rate / quota gates;
//                   per-tenant overload policy: park, reject, shed)
//                -> BatchEngine::submit_task (kRejectNewest at the engine
//                   queue = the global overload backstop)
//                -> worker decode on a per-worker per-codec decoder
//                -> completion queue -> event loop -> response frame
//
// Threading: one event-loop thread owns every socket and all service state
// (connections, parked requests, tenant accounting) under state_mutex_;
// engine workers only run decode tasks and push completions through a
// mutex-guarded queue + eventfd. stats() and shutdown() may be called from
// any thread.
//
// Robustness invariants (tests/service_test.cpp enforces these):
//   * every byte from the wire is hostile — no input can crash, hang, or
//     leak; malformed frames get typed errors, unframeable streams get one
//     error then the connection closes;
//   * every *accepted* request resolves exactly once: a decode response, a
//     shed/expired response, or (post-deadline drain) kDeadlineExpired —
//     never silence;
//   * a slow or dead client gets bounded write buffering then eviction,
//     never unbounded memory;
//   * shutdown(deadline) drains: stop accepting, finish or expire in-flight
//     work, report stragglers — it never hangs past its deadline + a small
//     cancellation grace.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "runtime/batch_engine.hpp"
#include "service/admission.hpp"
#include "service/codec_cache.hpp"
#include "service/wire.hpp"
#include "util/thread_annotations.hpp"

namespace ldpc::service {

struct ServiceConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the real one back via port().
  std::uint16_t port = 0;
  std::size_t max_connections = 256;
  /// Write-buffer cap per connection: a client that stops reading is
  /// evicted once its pending responses exceed this many bytes.
  std::size_t max_write_buffer = 4U << 20;
  std::size_t max_frame_bytes = kMaxPayloadBytes;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Tests
  /// shrink it so slow-client eviction triggers without megabytes of
  /// traffic.
  int send_buffer_bytes = 0;

  /// Decoder the codec cache builds per (standard, rate, z); see
  /// core/decoder_factory.hpp for names.
  std::string decoder_name = "layered-minsum-fixed";
  DecoderOptions decoder_options;
  /// Hook run on the *worker thread* when it builds a decoder, after
  /// `decoder_options` is copied — the place to wire a thread_local
  /// FaultInjector for chaos runs (see tests/chaos_test.cpp's idiom).
  std::function<void(DecoderOptions&)> decoder_options_hook;

  /// Engine shape. overload_policy is forced to kRejectNewest — per-tenant
  /// policy lives in admission control; the engine queue is the global
  /// backstop and must never block the event loop or silently shed.
  BatchEngineConfig engine;

  TenantConfig default_tenant;
  std::map<std::uint32_t, TenantConfig> tenants;
};

struct ServiceStats {
  // Connections.
  std::size_t connections_accepted = 0;
  std::size_t connections_refused = 0;  ///< over max_connections
  std::size_t connections_active = 0;
  std::size_t connections_evicted_slow = 0;  ///< write buffer over cap
  std::size_t connections_fatal_framing = 0;
  std::size_t connections_closed_by_peer = 0;
  // Frames.
  std::size_t frames_received = 0;
  std::size_t malformed_frames = 0;  ///< parse errors + bad types
  std::size_t requests_received = 0;
  std::size_t responses_sent = 0;
  std::size_t errors_sent = 0;
  // Admission outcomes.
  std::size_t jobs_admitted = 0;   ///< entered the engine (incl. unparked)
  std::size_t jobs_parked = 0;     ///< ever parked
  std::size_t jobs_shed = 0;       ///< parked requests evicted (shed-oldest)
  std::size_t jobs_rate_limited = 0;
  std::size_t jobs_quota_rejected = 0;
  std::size_t jobs_deadline_refused = 0;  ///< dead on arrival
  std::size_t jobs_refused_draining = 0;
  std::size_t jobs_engine_rejected = 0;  ///< engine queue full
  /// Connections whose reads were paused for wire-level backpressure (the
  /// owning tenant's wait line filled); reads resume when capacity frees.
  std::size_t read_throttle_events = 0;
  // Completions.
  std::size_t jobs_completed = 0;
  std::size_t jobs_deadline_expired = 0;  ///< completed with that status
  std::size_t jobs_flushed_at_drain = 0;  ///< parked, expired by shutdown
  // Bytes.
  std::size_t bytes_read = 0;
  std::size_t bytes_written = 0;

  CodecCacheStats codec;
  std::vector<TenantStats> tenants;
  EngineMetrics engine;
};

struct ShutdownReport {
  /// True when every accepted job resolved before the drain deadline
  /// (without needing forced cancellation).
  bool drained_clean = false;
  /// Parked requests answered kDeadlineExpired at the deadline.
  std::size_t parked_flushed = 0;
  /// In-flight jobs whose cancel token was tripped at the deadline.
  std::size_t cancelled_in_flight = 0;
  /// Engine jobs still running after cancellation grace (from drain_until).
  std::size_t stragglers = 0;
  std::vector<std::size_t> straggler_frames;
};

class DecodeService {
 public:
  explicit DecodeService(ServiceConfig config);
  /// Stops the event loop and the engine; equivalent to
  /// shutdown(now + 1s) when the caller never drained explicitly.
  ~DecodeService();

  DecodeService(const DecodeService&) = delete;
  DecodeService& operator=(const DecodeService&) = delete;

  /// Bind, listen, spawn the engine and the event loop. Throws ldpc::Error
  /// when the socket cannot be bound.
  void start();

  /// Port actually bound (after start()).
  std::uint16_t port() const { return bound_port_; }

  /// Tear-free stats snapshot, callable from any thread.
  ServiceStats stats() const LDPC_EXCLUDES(state_mutex_);

  /// Graceful drain (the SIGTERM path): stop accepting work, answer every
  /// already-accepted job, expire what cannot finish by `deadline`, then
  /// stop. Idempotent; concurrent callers get the first call's report.
  ShutdownReport shutdown(Clock::time_point deadline)
      LDPC_EXCLUDES(shutdown_mutex_, state_mutex_);

  /// Convenience: drain with a relative timeout.
  ShutdownReport shutdown_after(std::chrono::nanoseconds timeout) {
    return shutdown(Clock::now() + timeout);
  }

 private:
  struct Connection;
  struct PendingJob;
  struct Completion {
    std::uint64_t serial = 0;
    DecodeResult result;
    SaturationStats saturation;
  };

  // Every handler below runs on the event-loop thread with state_mutex_
  // held for the whole tick; the REQUIRES annotations make that discipline
  // compiler-checked under clang.
  void loop_main() LDPC_EXCLUDES(state_mutex_);
  void handle_accept() LDPC_REQUIRES(state_mutex_);
  void handle_readable(Connection& conn) LDPC_REQUIRES(state_mutex_);
  void handle_writable(Connection& conn) LDPC_REQUIRES(state_mutex_);
  void process_frames(Connection& conn) LDPC_REQUIRES(state_mutex_);
  void handle_decode_request(Connection& conn, DecodeRequest&& request)
      LDPC_REQUIRES(state_mutex_);
  void submit_to_engine(const std::shared_ptr<PendingJob>& job)
      LDPC_REQUIRES(state_mutex_);
  void process_completions() LDPC_REQUIRES(state_mutex_)
      LDPC_EXCLUDES(completions_mutex_);
  void unpark_tenant(std::uint32_t tenant_id) LDPC_REQUIRES(state_mutex_);
  /// Wire-level backpressure: stop reading from `conn` because a request it
  /// sent parked in `tenant_id`'s wait line. Unread bytes accumulate in the
  /// kernel buffer and TCP flow control slows the sender — the event loop
  /// never spends a cycle parsing work the tenant cannot take.
  void throttle_connection(Connection& conn, std::uint32_t tenant_id)
      LDPC_REQUIRES(state_mutex_);
  void unthrottle_tenant(std::uint32_t tenant_id) LDPC_REQUIRES(state_mutex_);
  /// Resume reads when the tenant can make progress again (free in-flight
  /// capacity, or an emptied wait line).
  void maybe_unthrottle(std::uint32_t tenant_id) LDPC_REQUIRES(state_mutex_);
  void flush_for_drain() LDPC_REQUIRES(state_mutex_);
  void send_bytes(Connection& conn, std::vector<std::uint8_t> bytes)
      LDPC_REQUIRES(state_mutex_);
  void send_error(Connection& conn, std::uint64_t request_id,
                  WireErrorCode code, const std::string& detail)
      LDPC_REQUIRES(state_mutex_);
  void close_connection(int fd, bool evicted, bool by_peer)
      LDPC_REQUIRES(state_mutex_);
  void update_epoll(Connection& conn) LDPC_REQUIRES(state_mutex_);
  std::string build_stats_json() LDPC_REQUIRES(state_mutex_);
  void post_completion(std::uint64_t serial, const DecodeResult& result,
                       const SaturationStats& saturation)
      LDPC_EXCLUDES(completions_mutex_);
  void wake_loop();

  ServiceConfig config_;
  std::uint16_t bound_port_ = 0;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int event_fd_ = -1;

  std::unique_ptr<CodecCache> codecs_;
  std::unique_ptr<BatchEngine> engine_;
  std::thread loop_thread_;

  // All state below state_mutex_ is owned by the event loop; stats() and
  // shutdown() take the same mutex from other threads. Lock order:
  // shutdown_mutex_ -> state_mutex_ -> completions_mutex_; the engine's and
  // codec cache's internal mutexes nest inside state_mutex_.
  mutable Mutex state_mutex_;
  std::condition_variable drained_cv_;
  /// Pure decision machine (no internal lock): tenant buckets, wait-line
  /// accounting. Mutated only under state_mutex_.
  AdmissionController admission_ LDPC_GUARDED_BY(state_mutex_);
  std::map<int, std::unique_ptr<Connection>> conns_
      LDPC_GUARDED_BY(state_mutex_);
  /// Connections closed during this event-loop tick. Destruction is
  /// deferred to the next tick so in-flight references (a handler that
  /// triggered the eviction mid-send) stay valid; the fd itself is closed
  /// and unmapped immediately.
  std::vector<std::unique_ptr<Connection>> graveyard_
      LDPC_GUARDED_BY(state_mutex_);
  std::map<std::uint64_t, std::shared_ptr<PendingJob>> pending_
      LDPC_GUARDED_BY(state_mutex_);
  /// Tenant id -> parked serials, oldest first.
  std::map<std::uint32_t, std::deque<std::uint64_t>> parked_
      LDPC_GUARDED_BY(state_mutex_);
  /// Tenant id -> connections whose reads are paused for backpressure.
  std::map<std::uint32_t, std::set<int>> throttled_fds_
      LDPC_GUARDED_BY(state_mutex_);
  ServiceStats counters_ LDPC_GUARDED_BY(state_mutex_);
  std::uint64_t next_serial_ LDPC_GUARDED_BY(state_mutex_) = 1;
  bool draining_ LDPC_GUARDED_BY(state_mutex_) = false;
  bool flush_requested_ LDPC_GUARDED_BY(state_mutex_) = false;
  bool stop_requested_ LDPC_GUARDED_BY(state_mutex_) = false;
  bool stopped_ LDPC_GUARDED_BY(state_mutex_) = false;
  /// In-flight tokens tripped at drain.
  std::size_t drain_cancelled_ LDPC_GUARDED_BY(state_mutex_) = 0;

  Mutex completions_mutex_;
  std::vector<Completion> completions_ LDPC_GUARDED_BY(completions_mutex_);

  Mutex shutdown_mutex_;  ///< serializes shutdown(); taken first
  bool shutdown_done_ LDPC_GUARDED_BY(shutdown_mutex_) = false;
  ShutdownReport shutdown_report_ LDPC_GUARDED_BY(shutdown_mutex_);
};

}  // namespace ldpc::service
