#include "service/wire.hpp"

#include <cmath>
#include <cstring>
#include <sstream>

// GCC 12's -Wstringop-overflow misfires on FrameBuilder's resize+memcpy
// chain once callers are inlined (libstdc++'s internal memset appears to
// write past a phantom 8-byte allocation). Every append here is sized by
// construction; silence the false positive for this TU under GCC only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif

namespace ldpc::service {
namespace {

/// Bounds-checked little-endian cursor over a body span. Every get_*
/// returns false on underflow instead of reading past the end; the parse
/// functions translate that into kTruncatedBody exactly once.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  bool get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool get_bytes(std::size_t count, std::span<const std::uint8_t>* out) {
    if (bytes_.size() - pos_ < count) return false;
    *out = bytes_.subspan(pos_, count);
    pos_ += count;
    return true;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Append-only little-endian builder; reserves the 4-byte length prefix and
/// back-patches it on finish().
class FrameBuilder {
 public:
  explicit FrameBuilder(FrameType type) {
    bytes_.resize(4);  // length prefix, patched in finish()
    put<std::uint8_t>(kMagic0);
    put<std::uint8_t>(kMagic1);
    put<std::uint8_t>(kWireVersion);
    put<std::uint8_t>(static_cast<std::uint8_t>(type));
  }

  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = bytes_.size();
    bytes_.resize(at + sizeof(T));
    std::memcpy(bytes_.data() + at, &value, sizeof(T));
  }

  void put_bytes(const void* data, std::size_t count) {
    const std::size_t at = bytes_.size();
    bytes_.resize(at + count);
    std::memcpy(bytes_.data() + at, data, count);
  }

  std::vector<std::uint8_t> finish() {
    const std::uint32_t payload_len =
        static_cast<std::uint32_t>(bytes_.size() - 4);
    std::memcpy(bytes_.data(), &payload_len, sizeof(payload_len));
    return std::move(bytes_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace

const char* to_string(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kNone:             return "none";
    case WireErrorCode::kBadMagic:         return "bad-magic";
    case WireErrorCode::kBadVersion:       return "bad-version";
    case WireErrorCode::kOversizedFrame:   return "oversized-frame";
    case WireErrorCode::kBadType:          return "bad-type";
    case WireErrorCode::kTruncatedBody:    return "truncated-body";
    case WireErrorCode::kTrailingBytes:    return "trailing-bytes";
    case WireErrorCode::kUnknownCodec:     return "unknown-codec";
    case WireErrorCode::kLlrCountMismatch: return "llr-count-mismatch";
    case WireErrorCode::kBadLlrValue:      return "bad-llr-value";
    case WireErrorCode::kRateLimited:      return "rate-limited";
    case WireErrorCode::kQuotaExceeded:    return "quota-exceeded";
    case WireErrorCode::kOverloaded:       return "overloaded";
    case WireErrorCode::kDeadlineUnmeetable: return "deadline-unmeetable";
    case WireErrorCode::kShedOverload:     return "shed-overload";
    case WireErrorCode::kDraining:         return "draining";
    case WireErrorCode::kInternal:         return "internal";
  }
  return "?";
}

std::string to_string(const CodecRef& codec) {
  std::ostringstream os;
  os << "codec(standard=" << static_cast<int>(codec.standard)
     << ", rate=" << static_cast<int>(codec.rate) << ", z=" << codec.z << ")";
  return os.str();
}

bool FrameReader::push(std::span<const std::uint8_t> bytes) {
  if (fatal_ != WireErrorCode::kNone) return false;
  // Compact lazily: only once the handed-out prefix dominates the buffer,
  // so steady-state cost is O(bytes) amortized, not O(bytes^2).
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  return true;
}

FrameReader::Status FrameReader::next(Frame* out) {
  if (fatal_ != WireErrorCode::kNone) return Status::kFatal;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return Status::kNeedMore;
  std::uint32_t payload_len = 0;
  std::memcpy(&payload_len, buffer_.data() + consumed_, 4);
  // The length prefix is validated before a single payload byte is
  // required: a hostile 4 GiB length can never grow the buffer.
  if (payload_len > max_payload_ || payload_len < kPayloadHeaderBytes) {
    fatal_ = WireErrorCode::kOversizedFrame;
    return Status::kFatal;
  }
  if (available - 4 < payload_len) return Status::kNeedMore;
  const std::uint8_t* payload = buffer_.data() + consumed_ + 4;
  if (payload[0] != kMagic0 || payload[1] != kMagic1) {
    fatal_ = WireErrorCode::kBadMagic;
    return Status::kFatal;
  }
  if (payload[2] != kWireVersion) {
    fatal_ = WireErrorCode::kBadVersion;
    return Status::kFatal;
  }
  out->type = static_cast<FrameType>(payload[3]);
  out->body = std::span<const std::uint8_t>(payload + kPayloadHeaderBytes,
                                            payload_len - kPayloadHeaderBytes);
  consumed_ += 4 + payload_len;
  return Status::kFrame;
}

WireErrorCode parse_decode_request(std::span<const std::uint8_t> body,
                                   DecodeRequest* out) {
  ByteReader reader(body);
  std::uint32_t llr_count = 0;
  if (!reader.get(&out->request_id) || !reader.get(&out->tenant_id) ||
      !reader.get(&out->codec.standard) || !reader.get(&out->codec.rate) ||
      !reader.get(&out->codec.z) || !reader.get(&out->deadline_us) ||
      !reader.get(&llr_count))
    return WireErrorCode::kTruncatedBody;
  if (llr_count > kMaxLlrCount) return WireErrorCode::kLlrCountMismatch;
  std::span<const std::uint8_t> raw;
  if (!reader.get_bytes(static_cast<std::size_t>(llr_count) * sizeof(float),
                        &raw))
    return WireErrorCode::kTruncatedBody;
  if (reader.remaining() != 0) return WireErrorCode::kTrailingBytes;
  out->llr.resize(llr_count);
  if (llr_count > 0)
    std::memcpy(out->llr.data(), raw.data(), raw.size());
  for (const float v : out->llr)
    if (!std::isfinite(v)) return WireErrorCode::kBadLlrValue;
  return WireErrorCode::kNone;
}

WireErrorCode parse_decode_response(std::span<const std::uint8_t> body,
                                    DecodeResponse* out) {
  ByteReader reader(body);
  if (!reader.get(&out->request_id) || !reader.get(&out->status) ||
      !reader.get(&out->flags) || !reader.get(&out->iterations) ||
      !reader.get(&out->bit_count))
    return WireErrorCode::kTruncatedBody;
  if (out->bit_count > kMaxLlrCount) return WireErrorCode::kTruncatedBody;
  const std::size_t byte_count = (out->bit_count + 7) / 8;
  std::span<const std::uint8_t> raw;
  if (!reader.get_bytes(byte_count, &raw)) return WireErrorCode::kTruncatedBody;
  if (reader.remaining() != 0) return WireErrorCode::kTrailingBytes;
  out->packed_bits.assign(raw.begin(), raw.end());
  return WireErrorCode::kNone;
}

WireErrorCode parse_error_response(std::span<const std::uint8_t> body,
                                   ErrorResponse* out) {
  ByteReader reader(body);
  std::uint16_t code = 0;
  std::uint16_t detail_len = 0;
  if (!reader.get(&out->request_id) || !reader.get(&code) ||
      !reader.get(&detail_len))
    return WireErrorCode::kTruncatedBody;
  std::span<const std::uint8_t> raw;
  if (!reader.get_bytes(detail_len, &raw)) return WireErrorCode::kTruncatedBody;
  if (reader.remaining() != 0) return WireErrorCode::kTrailingBytes;
  out->code = static_cast<WireErrorCode>(code);
  out->detail.assign(raw.begin(), raw.end());
  return WireErrorCode::kNone;
}

WireErrorCode parse_ping(std::span<const std::uint8_t> body,
                         std::uint64_t* nonce) {
  ByteReader reader(body);
  if (!reader.get(nonce)) return WireErrorCode::kTruncatedBody;
  if (reader.remaining() != 0) return WireErrorCode::kTrailingBytes;
  return WireErrorCode::kNone;
}

WireErrorCode parse_stats_response(std::span<const std::uint8_t> body,
                                   std::string* text) {
  ByteReader reader(body);
  std::uint32_t text_len = 0;
  if (!reader.get(&text_len)) return WireErrorCode::kTruncatedBody;
  std::span<const std::uint8_t> raw;
  if (!reader.get_bytes(text_len, &raw)) return WireErrorCode::kTruncatedBody;
  if (reader.remaining() != 0) return WireErrorCode::kTrailingBytes;
  text->assign(raw.begin(), raw.end());
  return WireErrorCode::kNone;
}

std::vector<std::uint8_t> encode_decode_request(const DecodeRequest& request) {
  FrameBuilder b(FrameType::kDecodeRequest);
  b.put(request.request_id);
  b.put(request.tenant_id);
  b.put(request.codec.standard);
  b.put(request.codec.rate);
  b.put(request.codec.z);
  b.put(request.deadline_us);
  b.put(static_cast<std::uint32_t>(request.llr.size()));
  if (!request.llr.empty())
    b.put_bytes(request.llr.data(), request.llr.size() * sizeof(float));
  return b.finish();
}

std::vector<std::uint8_t> encode_decode_response(
    const DecodeResponse& response) {
  FrameBuilder b(FrameType::kDecodeResponse);
  b.put(response.request_id);
  b.put(response.status);
  b.put(response.flags);
  b.put(response.iterations);
  b.put(response.bit_count);
  if (!response.packed_bits.empty())
    b.put_bytes(response.packed_bits.data(), response.packed_bits.size());
  return b.finish();
}

std::vector<std::uint8_t> encode_error_response(const ErrorResponse& error) {
  FrameBuilder b(FrameType::kError);
  b.put(error.request_id);
  b.put(static_cast<std::uint16_t>(error.code));
  // Details are diagnostics, not data: truncate rather than fail.
  const std::size_t detail_len = std::min<std::size_t>(error.detail.size(),
                                                       0xFFFF);
  b.put(static_cast<std::uint16_t>(detail_len));
  if (detail_len > 0) b.put_bytes(error.detail.data(), detail_len);
  return b.finish();
}

std::vector<std::uint8_t> encode_ping(std::uint64_t nonce) {
  FrameBuilder b(FrameType::kPing);
  b.put(nonce);
  return b.finish();
}

std::vector<std::uint8_t> encode_pong(std::uint64_t nonce) {
  FrameBuilder b(FrameType::kPong);
  b.put(nonce);
  return b.finish();
}

std::vector<std::uint8_t> encode_stats_request() {
  FrameBuilder b(FrameType::kStatsRequest);
  return b.finish();
}

std::vector<std::uint8_t> encode_stats_response(const std::string& text) {
  FrameBuilder b(FrameType::kStatsResponse);
  b.put(static_cast<std::uint32_t>(text.size()));
  if (!text.empty()) b.put_bytes(text.data(), text.size());
  return b.finish();
}

std::vector<std::uint8_t> pack_bits(const BitVec& bits) {
  std::vector<std::uint8_t> packed((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits.get(i)) packed[i / 8] |= static_cast<std::uint8_t>(1U << (i % 8));
  return packed;
}

BitVec unpack_bits(std::span<const std::uint8_t> bytes,
                   std::size_t bit_count) {
  BitVec bits(bit_count);
  for (std::size_t i = 0; i < bit_count; ++i)
    bits.set(i, (bytes[i / 8] >> (i % 8)) & 1U);
  return bits;
}

}  // namespace ldpc::service
