#include "service/admission.hpp"

#include <algorithm>

namespace ldpc::service {

const char* to_string(AdmitDecision decision) {
  switch (decision) {
    case AdmitDecision::kAdmit:           return "admit";
    case AdmitDecision::kPark:            return "park";
    case AdmitDecision::kParkShedOldest:  return "park-shed-oldest";
    case AdmitDecision::kRateLimited:     return "rate-limited";
    case AdmitDecision::kQuotaExceeded:   return "quota-exceeded";
    case AdmitDecision::kDeadlineExpired: return "deadline-expired";
  }
  return "?";
}

void AdmissionController::configure_tenant(std::uint32_t tenant_id,
                                           const TenantConfig& config) {
  Tenant& t = tenant(tenant_id);
  t.config = config;
  t.stats.policy = config.policy;
}

AdmissionController::Tenant& AdmissionController::tenant(
    std::uint32_t tenant_id) {
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    Tenant t;
    t.config = default_config_;
    t.stats.tenant_id = tenant_id;
    t.stats.policy = t.config.policy;
    it = tenants_.emplace(tenant_id, std::move(t)).first;
  }
  return it->second;
}

AdmitDecision AdmissionController::admit(std::uint32_t tenant_id,
                                         Clock::time_point now,
                                         bool deadline_already_expired) {
  Tenant& t = tenant(tenant_id);
  ++t.stats.requests;

  if (deadline_already_expired) {
    ++t.stats.deadline_refused;
    return AdmitDecision::kDeadlineExpired;
  }

  if (t.config.rate_per_sec > 0.0) {
    Bucket& b = t.bucket;
    if (!b.primed) {
      b.tokens = t.config.burst;
      b.last = now;
      b.primed = true;
    } else {
      const double dt = std::chrono::duration<double>(now - b.last).count();
      b.tokens = std::min(t.config.burst,
                          b.tokens + dt * t.config.rate_per_sec);
      b.last = now;
    }
    if (b.tokens < 1.0) {
      ++t.stats.rate_limited;
      return AdmitDecision::kRateLimited;
    }
    b.tokens -= 1.0;
  }

  if (t.stats.in_flight < t.config.max_in_flight) {
    ++t.stats.in_flight;
    ++t.stats.admitted;
    return AdmitDecision::kAdmit;
  }

  switch (t.config.policy) {
    case OverloadPolicy::kRejectNewest:
      ++t.stats.quota_rejected;
      return AdmitDecision::kQuotaExceeded;
    case OverloadPolicy::kBlock:
      if (t.stats.parked >= t.config.max_parked) {
        ++t.stats.quota_rejected;
        return AdmitDecision::kQuotaExceeded;
      }
      ++t.stats.parked;
      return AdmitDecision::kPark;
    case OverloadPolicy::kShedOldest:
      if (t.stats.parked >= t.config.max_parked) {
        // Wait line stays at its cap: the caller evicts the oldest parked
        // request (and reports it via on_shed, which decrements parked)
        // before parking this one — so pre-increment keeps the count exact.
        ++t.stats.parked;
        return AdmitDecision::kParkShedOldest;
      }
      ++t.stats.parked;
      return AdmitDecision::kPark;
  }
  ++t.stats.quota_rejected;
  return AdmitDecision::kQuotaExceeded;
}

void AdmissionController::on_shed(std::uint32_t tenant_id) {
  Tenant& t = tenant(tenant_id);
  if (t.stats.parked > 0) --t.stats.parked;
  ++t.stats.shed;
}

void AdmissionController::on_unparked(std::uint32_t tenant_id) {
  Tenant& t = tenant(tenant_id);
  if (t.stats.parked > 0) --t.stats.parked;
  ++t.stats.in_flight;
  ++t.stats.admitted;
}

void AdmissionController::on_admit_failed(std::uint32_t tenant_id) {
  Tenant& t = tenant(tenant_id);
  if (t.stats.in_flight > 0) --t.stats.in_flight;
  if (t.stats.admitted > 0) --t.stats.admitted;
}

void AdmissionController::on_park_abandoned(std::uint32_t tenant_id) {
  Tenant& t = tenant(tenant_id);
  if (t.stats.parked > 0) --t.stats.parked;
}

bool AdmissionController::on_complete(std::uint32_t tenant_id) {
  Tenant& t = tenant(tenant_id);
  if (t.stats.in_flight > 0) --t.stats.in_flight;
  ++t.stats.completed;
  return t.stats.parked > 0 && t.stats.in_flight < t.config.max_in_flight;
}

bool AdmissionController::has_capacity(std::uint32_t tenant_id) const {
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return true;
  return it->second.stats.in_flight < it->second.config.max_in_flight;
}

OverloadPolicy AdmissionController::tenant_policy(
    std::uint32_t tenant_id) const {
  const auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? default_config_.policy
                              : it->second.config.policy;
}

std::vector<TenantStats> AdmissionController::stats() const {
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [id, t] : tenants_) out.push_back(t.stats);
  return out;
}

}  // namespace ldpc::service
