// Standalone decode server: `decode_server --port 9000 --workers 4`.
// SIGTERM / SIGINT start a graceful drain (default 5 s): stop accepting,
// resolve every accepted request, then exit. A second signal is not needed
// — the drain deadline bounds shutdown on its own.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/service.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--workers N] [--queue-capacity Q]\n"
               "          [--drain-seconds S] [--max-connections C]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  ldpc::service::ServiceConfig config;
  config.engine.num_workers = std::thread::hardware_concurrency();
  if (config.engine.num_workers == 0) config.engine.num_workers = 2;
  int drain_seconds = 5;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--workers") {
      config.engine.num_workers = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--queue-capacity") {
      config.engine.queue_capacity =
          static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--drain-seconds") {
      drain_seconds = std::atoi(next());
    } else if (arg == "--max-connections") {
      config.max_connections = static_cast<std::size_t>(std::atol(next()));
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  ldpc::service::DecodeService service(config);
  try {
    service.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "decode_server: %s\n", e.what());
    return 1;
  }
  std::printf("decode_server listening on %s:%u (%u workers)\n",
              config.bind_address.c_str(), service.port(),
              config.engine.num_workers);
  std::fflush(stdout);

  while (!g_stop)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::printf("decode_server: draining (up to %d s)...\n", drain_seconds);
  std::fflush(stdout);
  const auto report =
      service.shutdown_after(std::chrono::seconds(drain_seconds));
  std::printf(
      "decode_server: drained_clean=%d parked_flushed=%zu "
      "cancelled_in_flight=%zu stragglers=%zu\n",
      report.drained_clean ? 1 : 0, report.parked_flushed,
      report.cancelled_in_flight, report.stragglers);
  return report.stragglers == 0 ? 0 : 3;
}
