#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/check.hpp"

namespace ldpc::service {

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

void BlockingClient::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  LDPC_CHECK_MSG(fd_ >= 0, "socket() failed: " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  LDPC_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                 "bad host address '" << host << "'");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close();
    throw Error("connect(" + host + ":" + std::to_string(port) +
                ") failed: " + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  reader_ = FrameReader();
}

void BlockingClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool BlockingClient::send_raw(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a server that closed us mid-send must surface as a
    // return value, not a SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<OwnedFrame> BlockingClient::read_frame(
    std::chrono::milliseconds timeout) {
  if (fd_ < 0) return std::nullopt;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    Frame frame;
    const FrameReader::Status status = reader_.next(&frame);
    if (status == FrameReader::Status::kFrame) {
      OwnedFrame out;
      out.type = frame.type;
      out.body.assign(frame.body.begin(), frame.body.end());
      return out;
    }
    if (status == FrameReader::Status::kFatal) return std::nullopt;

    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    pollfd pfd{fd_, POLLIN, 0};
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    const int ready = ::poll(&pfd, 1, static_cast<int>(wait.count() + 1));
    if (ready < 0 && errno != EINTR) return std::nullopt;
    if (ready <= 0) continue;
    std::uint8_t chunk[16384];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n == 0) return std::nullopt;  // server closed
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return std::nullopt;
    }
    if (!reader_.push(std::span<const std::uint8_t>(
            chunk, static_cast<std::size_t>(n))))
      return std::nullopt;
  }
}

std::optional<DecodeOutcome> BlockingClient::decode(
    const DecodeRequest& request, std::chrono::milliseconds timeout) {
  if (!send_raw(encode_decode_request(request))) return std::nullopt;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    auto frame = read_frame(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (!frame) return std::nullopt;
    DecodeOutcome outcome;
    if (frame->type == FrameType::kDecodeResponse) {
      if (parse_decode_response(frame->body, &outcome.response) !=
          WireErrorCode::kNone)
        return std::nullopt;
      if (outcome.response.request_id != request.request_id) continue;
      return outcome;
    }
    if (frame->type == FrameType::kError) {
      outcome.is_error = true;
      if (parse_error_response(frame->body, &outcome.error) !=
          WireErrorCode::kNone)
        return std::nullopt;
      // request_id 0 marks errors the server could not attribute (e.g. a
      // fatal framing goodbye): treat those as resolving this request too.
      if (outcome.error.request_id != 0 &&
          outcome.error.request_id != request.request_id)
        continue;
      return outcome;
    }
    // Unrelated frame type (a stale pong, say): skip it.
  }
}

std::optional<std::uint64_t> BlockingClient::ping(
    std::uint64_t nonce, std::chrono::milliseconds timeout) {
  if (!send_raw(encode_ping(nonce))) return std::nullopt;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    auto frame = read_frame(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (!frame) return std::nullopt;
    if (frame->type != FrameType::kPong) continue;
    std::uint64_t echoed = 0;
    if (parse_ping(frame->body, &echoed) != WireErrorCode::kNone)
      return std::nullopt;
    return echoed;
  }
}

std::optional<std::string> BlockingClient::stats(
    std::chrono::milliseconds timeout) {
  if (!send_raw(encode_stats_request())) return std::nullopt;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    auto frame = read_frame(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (!frame) return std::nullopt;
    if (frame->type != FrameType::kStatsResponse) continue;
    std::string text;
    if (parse_stats_response(frame->body, &text) != WireErrorCode::kNone)
      return std::nullopt;
    return text;
  }
}

}  // namespace ldpc::service
