// Length-prefixed binary framing for the network decode service.
//
// Every byte arriving from a socket is hostile until proven otherwise: the
// codec in this file is the only place wire bytes are interpreted, and it
// never throws, never over-reads, and never allocates proportionally to
// anything but the validated length prefix (itself capped). Malformed input
// produces a typed WireErrorCode — either recoverable (a well-framed
// message with bad contents, answered with an error frame) or fatal (the
// byte stream itself is unparseable, so the connection must drop: after a
// bad magic there is no way to find the next frame boundary).
//
// Frame layout (all integers little-endian):
//
//   u32 payload_len | payload[payload_len]
//   payload := u8 magic0 'L' | u8 magic1 'D' | u8 version | u8 type | body
//
// Bodies by type:
//   kDecodeRequest  u64 request_id | u32 tenant_id | codec(u8 standard,
//                   u8 rate, u16 z) | u32 deadline_us | u32 llr_count |
//                   f32 llr[llr_count]
//   kDecodeResponse u64 request_id | u8 status | u8 flags | u16 iterations |
//                   u32 bit_count | u8 bits[ceil(bit_count / 8)] (LSB-first)
//   kError          u64 request_id | u16 code | u16 detail_len |
//                   char detail[detail_len]
//   kPing / kPong   u64 nonce
//   kStatsRequest   (empty)
//   kStatsResponse  u32 text_len | char text[text_len]
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace ldpc::service {

inline constexpr std::uint8_t kMagic0 = 'L';
inline constexpr std::uint8_t kMagic1 = 'D';
inline constexpr std::uint8_t kWireVersion = 1;
/// Header bytes inside the payload (magic + version + type).
inline constexpr std::size_t kPayloadHeaderBytes = 4;
/// Hard cap on one frame's payload; anything larger is a fatal framing
/// error before a single payload byte is buffered. Generous for the largest
/// bundled code (n = 2304 floats ≈ 9.2 KiB) with room for future batching.
inline constexpr std::size_t kMaxPayloadBytes = 1U << 20;
/// Sanity cap on a request's LLR count, independent of the payload cap.
inline constexpr std::uint32_t kMaxLlrCount = 1U << 16;

enum class FrameType : std::uint8_t {
  kDecodeRequest = 1,
  kDecodeResponse = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
  kStatsRequest = 6,
  kStatsResponse = 7,
};

/// Typed outcome taxonomy for everything that can go wrong between a byte
/// arriving and a decode being admitted. Values are wire ABI — never
/// renumber.
enum class WireErrorCode : std::uint16_t {
  kNone = 0,
  // Fatal framing errors: the stream cannot be resynchronized.
  kBadMagic = 1,
  kBadVersion = 2,
  kOversizedFrame = 3,
  // Recoverable per-frame errors: the frame boundary is sound, the
  // contents are not.
  kBadType = 4,
  kTruncatedBody = 5,   ///< body shorter than its fields declare
  kTrailingBytes = 6,   ///< body longer than its fields declare
  kUnknownCodec = 7,    ///< (standard, rate, z) names no bundled code
  kLlrCountMismatch = 8,  ///< llr_count != n of the named codec
  kBadLlrValue = 9,       ///< non-finite LLR in the payload
  // Admission / service-side outcomes (sent in kError frames; never
  // produced by the parser itself).
  kRateLimited = 10,
  kQuotaExceeded = 11,
  kOverloaded = 12,
  kDeadlineUnmeetable = 13,
  kShedOverload = 14,
  kDraining = 15,
  kInternal = 16,
};

const char* to_string(WireErrorCode code);

/// True for errors after which the connection's byte stream is garbage and
/// the only safe response is to answer once and close.
inline bool is_fatal(WireErrorCode code) {
  return code == WireErrorCode::kBadMagic ||
         code == WireErrorCode::kBadVersion ||
         code == WireErrorCode::kOversizedFrame;
}

/// Which bundled code family a request names.
enum class CodeStandard : std::uint8_t {
  kWimax = 0,     ///< rate = WimaxRate index 0..5, z in the 802.16e set
  kWifi = 1,      ///< rate = 0 (1/2 only), z in {27, 81}
  kRegistry = 2,  ///< rate = external_code_names() index, z = 1
};

/// Wire identity of a code: the codec-cache key.
struct CodecRef {
  std::uint8_t standard = 0;
  std::uint8_t rate = 0;
  std::uint16_t z = 0;

  friend bool operator==(const CodecRef&, const CodecRef&) = default;
  /// Strict weak order so CodecRef keys std::map.
  friend bool operator<(const CodecRef& a, const CodecRef& b) {
    if (a.standard != b.standard) return a.standard < b.standard;
    if (a.rate != b.rate) return a.rate < b.rate;
    return a.z < b.z;
  }
};

std::string to_string(const CodecRef& codec);

struct DecodeRequest {
  std::uint64_t request_id = 0;
  std::uint32_t tenant_id = 0;
  CodecRef codec;
  /// Relative deadline in microseconds from arrival; 0 = none.
  std::uint32_t deadline_us = 0;
  std::vector<float> llr;
};

struct DecodeResponse {
  std::uint64_t request_id = 0;
  std::uint8_t status = 0;  ///< static_cast<u8>(DecodeStatus)
  std::uint8_t flags = 0;   ///< bit 0: converged
  std::uint16_t iterations = 0;
  std::uint32_t bit_count = 0;
  std::vector<std::uint8_t> packed_bits;  ///< LSB-first, ceil(bit_count/8)
};

struct ErrorResponse {
  std::uint64_t request_id = 0;  ///< 0 when the offending request has none
  WireErrorCode code = WireErrorCode::kNone;
  std::string detail;
};

/// One well-framed message: type plus a view of its body bytes. The view
/// aliases the FrameReader's buffer and is invalidated by the next call on
/// the reader.
struct Frame {
  FrameType type = FrameType::kError;
  std::span<const std::uint8_t> body;
};

/// Incremental frame extractor for one connection. Feed arbitrary chunks of
/// wire bytes; pull zero or more complete frames. Once a fatal framing
/// error is reported the reader latches it and refuses further input.
class FrameReader {
 public:
  enum class Status {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< *out filled; call again — more frames may be buffered
    kFatal,     ///< unrecoverable framing error; see fatal_error()
  };

  explicit FrameReader(std::size_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  /// Append wire bytes. Returns false (and latches kOversizedFrame) when
  /// the declared frame length exceeds the cap — the caller must stop
  /// reading from this connection.
  bool push(std::span<const std::uint8_t> bytes);

  Status next(Frame* out);

  WireErrorCode fatal_error() const { return fatal_; }
  /// Bytes currently buffered (tests pin the memory bound).
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< frames already handed out live in [0, consumed_)
  WireErrorCode fatal_ = WireErrorCode::kNone;
};

// --- Body parsers (server + client side). Each returns kNone on success
// --- and never throws on wire data. Codec existence is NOT checked here
// --- (the parser has no code tables); kUnknownCodec / kLlrCountMismatch
// --- are produced by the codec cache lookup in the service.
WireErrorCode parse_decode_request(std::span<const std::uint8_t> body,
                                   DecodeRequest* out);
WireErrorCode parse_decode_response(std::span<const std::uint8_t> body,
                                    DecodeResponse* out);
WireErrorCode parse_error_response(std::span<const std::uint8_t> body,
                                   ErrorResponse* out);
WireErrorCode parse_ping(std::span<const std::uint8_t> body,
                         std::uint64_t* nonce);
WireErrorCode parse_stats_response(std::span<const std::uint8_t> body,
                                   std::string* text);

// --- Frame builders. Each returns a complete wire frame (length prefix
// --- included) ready to append to a write buffer.
std::vector<std::uint8_t> encode_decode_request(const DecodeRequest& request);
std::vector<std::uint8_t> encode_decode_response(const DecodeResponse& response);
std::vector<std::uint8_t> encode_error_response(const ErrorResponse& error);
std::vector<std::uint8_t> encode_ping(std::uint64_t nonce);
std::vector<std::uint8_t> encode_pong(std::uint64_t nonce);
std::vector<std::uint8_t> encode_stats_request();
std::vector<std::uint8_t> encode_stats_response(const std::string& text);

/// Pack hard decisions LSB-first into bytes (the kDecodeResponse layout).
std::vector<std::uint8_t> pack_bits(const BitVec& bits);
/// Inverse of pack_bits; `bit_count` bits are consumed from `bytes`.
BitVec unpack_bits(std::span<const std::uint8_t> bytes,
                   std::size_t bit_count);

}  // namespace ldpc::service
