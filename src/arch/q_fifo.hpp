// Q FIFO between core 1 and core 2 (Fig. 7).
//
// Core 1 pushes one z-wide vector of Q messages per block column; core 2
// pops them in order. Capacity equals the maximum layer degree (the paper's
// 7 x 768-bit FIFO for the rate-1/2 WiMAX code). In the pipelined
// architecture a full FIFO back-pressures core 1 — an additional stall
// source the timing engine models alongside the scoreboard.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "util/check.hpp"

namespace ldpc {

class QFifo {
 public:
  explicit QFifo(std::size_t capacity) : capacity_(capacity) {
    LDPC_CHECK(capacity >= 1);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool full() const { return entries_.size() >= capacity_; }
  bool empty() const { return entries_.empty(); }

  long long pushes() const { return pushes_; }
  long long pops() const { return pops_; }

  void push(std::vector<std::int32_t> q_vector) {
    LDPC_CHECK_MSG(!full(), "Q FIFO overflow — stall logic failed");
    ++pushes_;
    entries_.push_back(std::move(q_vector));
  }

  std::vector<std::int32_t> pop() {
    LDPC_CHECK_MSG(!empty(), "Q FIFO underflow — core 2 ran ahead of core 1");
    ++pops_;
    auto front = std::move(entries_.front());
    entries_.pop_front();
    return front;
  }

  void reset() {
    entries_.clear();
    pushes_ = pops_ = 0;
  }

 private:
  std::size_t capacity_;
  std::deque<std::vector<std::int32_t>> entries_;
  long long pushes_ = 0;
  long long pops_ = 0;
};

}  // namespace ldpc
