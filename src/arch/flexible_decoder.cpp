#include "arch/flexible_decoder.hpp"

namespace ldpc {

FlexibleWimaxDecoder::FlexibleWimaxDecoder(double clock_mhz, FixedFormat format,
                                           ArchKind arch, bool hazard_aware_order)
    : clock_mhz_(clock_mhz),
      format_(format),
      arch_(arch),
      hazard_aware_order_(hazard_aware_order) {
  validate(format_);
  LDPC_CHECK(clock_mhz_ > 0.0);
  options_.max_iterations = 10;
  options_.early_termination = true;
}

FlexibleWimaxDecoder::Instance& FlexibleWimaxDecoder::instance_for(
    const WimaxCodeId& id) {
  auto it = instances_.find(id);
  if (it != instances_.end()) return it->second;

  // make_wimax_code validates (rate, z).
  QCLdpcCode code = make_wimax_code(id.rate, id.z);
  const PicoCompiler pico(format_);
  // Smaller-z codes run on a z-lane subset of the 96-lane datapath: one
  // block column per beat, exactly as at full size.
  HardwareEstimate est =
      pico.compile(code, arch_, HardwareTarget{clock_mhz_, id.z});

  auto [inserted, _] = instances_.emplace(id, Instance{std::move(code), est, nullptr});
  Instance& inst = inserted->second;
  ArchSimConfig sim_cfg;
  sim_cfg.hazard_aware_order = hazard_aware_order_;
  inst.sim = std::make_unique<ArchSimDecoder>(inst.code, inst.estimate,
                                              options_, format_, sim_cfg);
  return inst;
}

ArchDecodeResult FlexibleWimaxDecoder::decode(const WimaxCodeId& id,
                                              std::span<const float> llr) {
  Instance& inst = instance_for(id);
  LDPC_CHECK_MSG(llr.size() == inst.code.n(),
                 "frame length " << llr.size() << " does not match n="
                                 << inst.code.n() << " for z=" << id.z);
  std::vector<std::int32_t> codes(llr.size());
  for (std::size_t i = 0; i < llr.size(); ++i)
    codes[i] = format_.quantize(llr[i]);
  return inst.sim->decode_quantized(codes);
}

void FlexibleWimaxDecoder::set_fault_injector(FaultInjector* injector) {
  options_.fault_injector = injector;
  // Simulators capture DecoderOptions by value; drop them so the next
  // decode() rebuilds with the hook in place.
  instances_.clear();
}

void FlexibleWimaxDecoder::set_watchdog(WatchdogOptions watchdog) {
  options_.watchdog = watchdog;
  instances_.clear();
}

const QCLdpcCode& FlexibleWimaxDecoder::code(const WimaxCodeId& id) {
  return instance_for(id).code;
}

const HardwareEstimate& FlexibleWimaxDecoder::estimate(const WimaxCodeId& id) {
  return instance_for(id).estimate;
}

long long FlexibleWimaxDecoder::provisioned_sram_bits() const {
  const long long z0 = 96;
  const long long w = format_.total_bits;
  return 24 * z0 * w +
         static_cast<long long>(wimax_max_r_slots()) * z0 * w;
}

}  // namespace ldpc
