// Activity accounting for the cycle-accurate simulators.
//
// Every count here is a physical event the gate-level power model prices:
// SRAM accesses, datapath beats, register-file updates, FIFO traffic, and —
// crucial for the Table I clock-gating study — per-block busy cycles, which
// determine what fraction of the flip-flops receive a clock edge when
// block-level gating is enabled.
#pragma once

#include <cstdint>

namespace ldpc {

struct ActivityCounters {
  long long cycles = 0;           ///< total decode latency in clock cycles
  long long iterations = 0;       ///< decoding iterations executed

  // Issue/stall accounting.
  long long core1_issue_beats = 0;  ///< cycles core1 accepted a column beat
  long long core2_issue_beats = 0;
  long long core1_stall_cycles = 0; ///< scoreboard / FIFO-full waits
  long long shifter_rotates = 0;    ///< full-width barrel rotations

  // Memory traffic (word = one z-wide row of the memory).
  long long p_reads = 0;
  long long p_writes = 0;
  long long r_reads = 0;
  long long r_writes = 0;

  // Register-file traffic (lane-updates: one lane's register write).
  long long min_array_updates = 0;
  long long q_fifo_pushes = 0;  ///< z-wide vector pushes
  long long q_fifo_pops = 0;
  long long layer_snapshots = 0;  ///< core1->core2 state-array handoffs

  // Busy windows for clock gating (cycles in which the block's registers
  // must be clocked).
  long long core1_busy_cycles = 0;
  long long core2_busy_cycles = 0;
  long long shifter_busy_cycles = 0;

  // Degraded-operation monitoring (0 unless the corresponding
  // DecoderOptions flags are set).
  long long sat_clips = 0;        ///< datapath saturation events
  long long faults_injected = 0;  ///< upsets landed by a fault injector

  void add(const ActivityCounters& other) {
    cycles += other.cycles;
    iterations += other.iterations;
    core1_issue_beats += other.core1_issue_beats;
    core2_issue_beats += other.core2_issue_beats;
    core1_stall_cycles += other.core1_stall_cycles;
    shifter_rotates += other.shifter_rotates;
    p_reads += other.p_reads;
    p_writes += other.p_writes;
    r_reads += other.r_reads;
    r_writes += other.r_writes;
    min_array_updates += other.min_array_updates;
    q_fifo_pushes += other.q_fifo_pushes;
    q_fifo_pops += other.q_fifo_pops;
    layer_snapshots += other.layer_snapshots;
    core1_busy_cycles += other.core1_busy_cycles;
    core2_busy_cycles += other.core2_busy_cycles;
    shifter_busy_cycles += other.shifter_busy_cycles;
    sat_clips += other.sat_clips;
    faults_injected += other.faults_injected;
  }

  /// Core-1 utilization: busy cycles over total (Fig. 4 vs Fig. 6 contrast).
  double core1_utilization() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(core1_busy_cycles) /
                             static_cast<double>(cycles);
  }
  double core2_utilization() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(core2_busy_cycles) /
                             static_cast<double>(cycles);
  }
};

}  // namespace ldpc
