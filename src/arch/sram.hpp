// Word-wide SRAM macro model.
//
// The paper's P memory is 24 words x 768 bits (one word per block column:
// 96 lanes x 8 bits) and the R memory 84 words x 768 bits (one word per
// non-zero circulant). The model stores one decoder message per lane and
// counts accesses for the power model. Single read port + single write port
// per cycle, which both architectures respect by construction (one column
// read and one column write per beat).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "util/check.hpp"

namespace ldpc {

class SramModel {
 public:
  SramModel(std::string name, std::size_t words, std::size_t lanes)
      : name_(std::move(name)), lanes_(lanes),
        data_(words, std::vector<std::int32_t>(lanes, 0)) {
    LDPC_CHECK(words > 0 && lanes > 0);
  }

  std::size_t words() const { return data_.size(); }
  std::size_t lanes() const { return lanes_; }
  const std::string& name() const { return name_; }

  /// Total macro capacity in bits for a given per-lane width.
  long long capacity_bits(int bits_per_lane) const {
    return static_cast<long long>(words()) * static_cast<long long>(lanes_) *
           bits_per_lane;
  }

  /// Wire a fault injector to this macro: reads pass through the injector,
  /// which may upset bits of the returned word (soft errors / read-disturb;
  /// the stored cells stay intact). `bits_per_lane` is the message width the
  /// macro carries. Passing nullptr detaches. With no injector (the default)
  /// or a disabled one, read() is bit-identical to the seed behaviour.
  void attach_fault_injector(FaultInjector* injector, FaultSite site,
                             int bits_per_lane) {
    injector_ = injector;
    fault_site_ = site;
    fault_bits_ = bits_per_lane;
  }

  const std::vector<std::int32_t>& read(std::size_t word) {
    LDPC_CHECK(word < data_.size());
    ++reads_;
    if (injector_ && injector_->armed(fault_site_)) {
      read_scratch_ = data_[word];
      injector_->corrupt_word(fault_site_, read_scratch_, fault_bits_);
      return read_scratch_;
    }
    return data_[word];
  }

  void write(std::size_t word, std::vector<std::int32_t> value) {
    LDPC_CHECK(word < data_.size());
    LDPC_CHECK(value.size() == lanes_);
    ++writes_;
    data_[word] = std::move(value);
  }

  /// Write a single lane of a word (used by folded datapaths).
  void write_lane(std::size_t word, std::size_t lane, std::int32_t value) {
    LDPC_CHECK(word < data_.size() && lane < lanes_);
    data_[word][lane] = value;
  }

  /// Peek without access accounting (testbench/early-termination logic).
  const std::vector<std::int32_t>& peek(std::size_t word) const {
    LDPC_CHECK(word < data_.size());
    return data_[word];
  }

  void fill(std::int32_t value) {
    for (auto& w : data_) std::fill(w.begin(), w.end(), value);
  }

  long long reads() const { return reads_; }
  long long writes() const { return writes_; }
  void reset_counters() { reads_ = writes_ = 0; }

 private:
  std::string name_;
  std::size_t lanes_;
  std::vector<std::vector<std::int32_t>> data_;
  long long reads_ = 0;
  long long writes_ = 0;

  // Fault-injection hook (read path only). Corrupted reads are served from
  // a scratch word so stored data stays clean — transient upsets must not
  // accidentally persist.
  FaultInjector* injector_ = nullptr;
  FaultSite fault_site_ = FaultSite::kSramP;
  int fault_bits_ = 8;
  std::vector<std::int32_t> read_scratch_;
};

}  // namespace ldpc
