#include "arch/flooding_arch.hpp"

namespace ldpc {

FloodingArchSim::FloodingArchSim(const QCLdpcCode& code, DecoderOptions options,
                                 FixedFormat format, int pipeline_overhead)
    : code_(code),
      options_(options),
      format_(format),
      pipeline_overhead_(pipeline_overhead),
      functional_(code, options, format) {
  LDPC_CHECK(pipeline_overhead >= 0);
}

FloodingArchResult FloodingArchSim::decode_quantized(
    std::span<const std::int32_t> channel_codes) {
  FloodingArchResult out;
  out.decode = functional_.decode_quantized(channel_codes);

  // Timing: per iteration,
  //   CNU: per block row, dc reads + dc writes of circulant words + fill;
  //   VNU: per block column, dv reads + dv writes + fill.
  const auto& base = code_.base();
  long long cnu = 0;
  for (std::size_t r = 0; r < base.rows(); ++r)
    cnu += 2 * static_cast<long long>(base.row_degree(r)) + pipeline_overhead_;
  long long vnu = 0;
  for (std::size_t c = 0; c < base.cols(); ++c)
    vnu += 2 * static_cast<long long>(base.col_degree(c)) + pipeline_overhead_;
  out.cycles_per_iteration = cnu + vnu;
  out.cycles =
      out.cycles_per_iteration * static_cast<long long>(out.decode.iterations);

  // Memory: per-edge Q and R words plus the channel LLRs (needed by the VNU
  // every iteration; the layered architecture folds them into P).
  const long long z = code_.z();
  const long long w = format_.total_bits;
  const auto slots = static_cast<long long>(base.nonzero_blocks());
  out.q_memory_bits = slots * z * w;
  out.r_memory_bits = slots * z * w;
  out.channel_memory_bits = static_cast<long long>(base.cols()) * z * w;
  return out;
}

}  // namespace ldpc
