#include "arch/trace.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace ldpc {

std::string render_timeline(const std::vector<TraceEvent>& events,
                            long long from, long long to) {
  LDPC_CHECK_MSG(to > from, "empty timeline window");
  const auto width = static_cast<std::size_t>(to - from);
  LDPC_CHECK_MSG(width <= 4096, "timeline window too wide to render");

  std::string lanes[2];
  lanes[0].assign(width, '.');
  lanes[1].assign(width, '.');

  for (const TraceEvent& e : events) {
    if (e.end < from || e.start >= to) continue;
    auto& lane = lanes[e.engine == TraceEngine::kCore1 ? 0 : 1];
    const long long lo = std::max(e.start, from);
    const long long hi = std::min(e.end, to - 1);
    const char mark =
        e.stall ? 'x' : static_cast<char>('0' + static_cast<int>(e.layer % 10));
    for (long long c = lo; c <= hi; ++c) {
      auto& cell = lane[static_cast<std::size_t>(c - from)];
      LDPC_CHECK_MSG(cell == '.', "engine double-booked at cycle " << c);
      cell = mark;
    }
  }

  // Cycle ruler (tens digits every 10 columns).
  std::string ruler(width, ' ');
  for (std::size_t i = 0; i < width; i += 10) {
    const std::string label = std::to_string(from + static_cast<long long>(i));
    for (std::size_t j = 0; j < label.size() && i + j < width; ++j)
      ruler[i + j] = label[j];
  }

  std::ostringstream os;
  os << "cycle  " << ruler << '\n';
  os << "core1  " << lanes[0] << '\n';
  os << "core2  " << lanes[1] << '\n';
  return os.str();
}

}  // namespace ldpc
