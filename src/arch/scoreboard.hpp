// Scoreboard for the two-layer pipelined architecture (§IV-B).
//
// Bit n is set while a write to the P word of block column n is pending in
// core 2; core 1 of the following layer must stall on a set bit to avoid a
// read-after-write hazard. Beyond the bit itself the model records *when*
// the pending write will land, which is what the analytic timing engine
// needs; the bit semantics used for functional checks are exactly the
// paper's.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fault/fault_injector.hpp"
#include "util/check.hpp"

namespace ldpc {

class Scoreboard {
 public:
  explicit Scoreboard(std::size_t block_cols)
      : clear_time_(block_cols, -1), pending_(block_cols, false) {}

  std::size_t size() const { return clear_time_.size(); }

  /// Core 1 just read column n whose new P will be written by core 2 at an
  /// as-yet-unknown time; mark pending.
  void set(std::size_t n) {
    LDPC_CHECK(n < pending_.size());
    pending_[n] = true;
    clear_time_[n] = -1;  // unknown until core 2 schedules the write
  }

  /// Core 2 scheduled the write of column n to land at `cycle`.
  void schedule_clear(std::size_t n, long long cycle) {
    LDPC_CHECK(n < pending_.size());
    LDPC_CHECK_MSG(pending_[n], "clearing a scoreboard bit that was never set");
    clear_time_[n] = cycle;
  }

  bool is_pending(std::size_t n) const {
    LDPC_CHECK(n < pending_.size());
    return pending_[n];
  }

  /// The pending bit as core 1 observes it through an optional fault
  /// injector — the §IV-B RAW-hazard failure mode: an upset that drops a
  /// set bit lets core 1 read a stale P word; an upset that raises a clear
  /// bit stalls core 1 needlessly. The stored bit itself is untouched.
  bool observed_pending(std::size_t n, FaultInjector* injector) const {
    const bool pending = is_pending(n);
    if (injector && injector->armed(FaultSite::kScoreboard))
      return injector->corrupt_flag(FaultSite::kScoreboard, pending);
    return pending;
  }

  /// Earliest cycle at which column n may be read: one past the write land
  /// time while pending, otherwise "now" (the caller passes its ready time).
  long long earliest_read(std::size_t n, long long ready) const {
    LDPC_CHECK(n < pending_.size());
    if (!pending_[n]) return ready;
    LDPC_CHECK_MSG(clear_time_[n] >= 0,
                   "core 1 would deadlock: pending write never scheduled");
    return std::max(ready, clear_time_[n] + 1);
  }

  /// Consume the pending state once the stall (if any) has been resolved.
  void resolve(std::size_t n) {
    LDPC_CHECK(n < pending_.size());
    pending_[n] = false;
    clear_time_[n] = -1;
  }

  void reset() {
    std::fill(pending_.begin(), pending_.end(), false);
    std::fill(clear_time_.begin(), clear_time_.end(), -1);
  }

 private:
  std::vector<long long> clear_time_;
  std::vector<bool> pending_;
};

}  // namespace ldpc
