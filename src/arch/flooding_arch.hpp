// Cycle-accurate model of the *traditional* partial-parallel flooding
// architecture — the baseline the paper's §IV-A improves on ("each z x z
// sub-matrix is treated as a block within which all the involved parity
// checks are processed in parallel using z decoding cores ... parallelism
// is only at the sub-circulant level").
//
// Two-phase schedule per iteration:
//   CNU phase — per block row: read the row's Q circulant-words (1/cycle),
//               then write the updated R words (1/cycle);
//   VNU phase — per block column: read its R words, then write Q words.
// Messages live per edge, so the memory complement is Q + R + channel —
// roughly 60% more storage than the layered architecture's P + R, and an
// iteration costs ~4 circulant-accesses per edge instead of the layered
// architecture's 2. Combined with flooding's ~2x iteration count this is
// the quantified motivation for Algorithm 1 (see bench_baseline_comparison).
#pragma once

#include "arch/activity.hpp"
#include "codes/qc_code.hpp"
#include "core/flooding_minsum_fixed.hpp"

namespace ldpc {

struct FloodingArchResult {
  DecodeResult decode;
  long long cycles = 0;
  long long cycles_per_iteration = 0;
  long long q_memory_bits = 0;
  long long r_memory_bits = 0;
  long long channel_memory_bits = 0;

  long long total_memory_bits() const {
    return q_memory_bits + r_memory_bits + channel_memory_bits;
  }
};

class FloodingArchSim {
 public:
  /// `pipeline_overhead` models CNU/VNU pipeline fill per block row/column
  /// (grows with the clock target like the layered cores' depths).
  FloodingArchSim(const QCLdpcCode& code, DecoderOptions options,
                  FixedFormat format = FixedFormat{}, int pipeline_overhead = 1);

  /// Functionally identical to FloodingMinSumFixedDecoder (asserted in the
  /// tests); adds the traditional architecture's timing and memory model.
  FloodingArchResult decode_quantized(std::span<const std::int32_t> channel_codes);

  const QCLdpcCode& code() const { return code_; }

 private:
  const QCLdpcCode& code_;
  DecoderOptions options_;
  FixedFormat format_;
  int pipeline_overhead_;
  FloodingMinSumFixedDecoder functional_;
};

}  // namespace ldpc
