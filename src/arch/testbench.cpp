#include "arch/testbench.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "util/rng.hpp"

namespace ldpc {

Testbench generate_testbench(const QCLdpcCode& code, ArchSimDecoder& sim,
                             std::size_t n_frames, float ebn0_db,
                             std::uint64_t seed) {
  LDPC_CHECK(sim.n() == code.n());
  const FixedFormat fmt{sim.estimate().msg_bits,
                        sim.estimate().msg_bits >= 6 ? 2 : 0};

  Testbench tb;
  tb.code_name = code.base().name();
  tb.n = code.n();
  tb.z = code.z();
  tb.msg_bits = sim.estimate().msg_bits;
  tb.arch = sim.estimate().arch;
  tb.clock_mhz = sim.estimate().clock_mhz;
  tb.parallelism = sim.estimate().parallelism;

  const RuEncoder encoder(code);
  const float variance = awgn_noise_variance(ebn0_db, code.rate());

  for (std::size_t f = 0; f < n_frames; ++f) {
    Xoshiro256 rng(seed + f * 1009);
    BitVec info(code.k());
    for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
    const BitVec word = encoder.encode(info);
    AwgnChannel channel(variance, seed + f * 1009 + 7);
    const auto llr = BpskModem::demodulate(
        channel.transmit(BpskModem::modulate(word)), variance);

    TestbenchFrame frame;
    frame.channel_codes.resize(llr.size());
    for (std::size_t i = 0; i < llr.size(); ++i)
      frame.channel_codes[i] = fmt.quantize(llr[i]);

    const auto result = sim.decode_quantized(frame.channel_codes);
    frame.expected_hard = result.decode.hard_bits;
    frame.expected_iterations = result.decode.iterations;
    frame.expected_converged = result.decode.converged;
    frame.expected_cycles = result.activity.cycles;
    tb.max_iterations = std::max(tb.max_iterations, frame.expected_iterations);
    tb.frames.push_back(std::move(frame));
  }
  return tb;
}

void write_testbench(std::ostream& out, const Testbench& tb) {
  out << "pico_ldpc_testbench v1\n";
  out << "code " << tb.code_name << '\n';
  out << "n " << tb.n << " z " << tb.z << " msg_bits " << tb.msg_bits << '\n';
  out << "arch " << arch_name(tb.arch) << " clock_mhz " << tb.clock_mhz
      << " parallelism " << tb.parallelism << '\n';
  out << "frames " << tb.frames.size() << '\n';
  for (const TestbenchFrame& f : tb.frames) {
    out << "frame " << f.expected_iterations << ' '
        << (f.expected_converged ? 1 : 0) << ' ' << f.expected_cycles << '\n';
    out << "stimulus";
    for (const auto c : f.channel_codes) out << ' ' << c;
    out << '\n';
    out << "expected ";
    for (std::size_t i = 0; i < f.expected_hard.size(); ++i)
      out << (f.expected_hard.get(i) ? '1' : '0');
    out << '\n';
  }
}

Testbench read_testbench(std::istream& in) {
  auto expect_token = [&in](const std::string& want) {
    std::string tok;
    LDPC_CHECK_MSG(static_cast<bool>(in >> tok) && tok == want,
                   "testbench: expected '" << want << "', got '" << tok << "'");
  };

  Testbench tb;
  expect_token("pico_ldpc_testbench");
  expect_token("v1");
  expect_token("code");
  in >> tb.code_name;
  expect_token("n");
  in >> tb.n;
  expect_token("z");
  in >> tb.z;
  expect_token("msg_bits");
  in >> tb.msg_bits;
  expect_token("arch");
  std::string arch;
  in >> arch;
  if (arch == "per-layer")
    tb.arch = ArchKind::kPerLayer;
  else if (arch == "two-layer-pipelined")
    tb.arch = ArchKind::kTwoLayerPipelined;
  else
    throw Error("testbench: unknown architecture " + arch);
  expect_token("clock_mhz");
  in >> tb.clock_mhz;
  expect_token("parallelism");
  in >> tb.parallelism;
  expect_token("frames");
  std::size_t n_frames = 0;
  in >> n_frames;
  LDPC_CHECK_MSG(in.good() && tb.n > 0 && n_frames < 1000000,
                 "testbench: malformed header");

  for (std::size_t f = 0; f < n_frames; ++f) {
    TestbenchFrame frame;
    expect_token("frame");
    int converged = 0;
    in >> frame.expected_iterations >> converged >> frame.expected_cycles;
    frame.expected_converged = converged != 0;
    expect_token("stimulus");
    frame.channel_codes.resize(tb.n);
    for (auto& c : frame.channel_codes) in >> c;
    expect_token("expected");
    std::string bits;
    in >> bits;
    LDPC_CHECK_MSG(bits.size() == tb.n, "testbench: expected-bits length "
                                            << bits.size() << " != n " << tb.n);
    frame.expected_hard.resize(tb.n);
    for (std::size_t i = 0; i < tb.n; ++i) {
      LDPC_CHECK_MSG(bits[i] == '0' || bits[i] == '1',
                     "testbench: bad bit character");
      frame.expected_hard.set(i, bits[i] == '1');
    }
    LDPC_CHECK_MSG(in.good() || in.eof(), "testbench: truncated frame");
    tb.max_iterations =
        std::max(tb.max_iterations, frame.expected_iterations);
    tb.frames.push_back(std::move(frame));
  }
  return tb;
}

std::size_t verify_testbench(const Testbench& tb, ArchSimDecoder& sim) {
  LDPC_CHECK_MSG(sim.n() == tb.n, "testbench: simulator n mismatch");
  std::size_t mismatches = 0;
  for (const TestbenchFrame& f : tb.frames) {
    const auto result = sim.decode_quantized(f.channel_codes);
    const bool ok = result.decode.hard_bits == f.expected_hard &&
                    result.decode.iterations == f.expected_iterations &&
                    result.decode.converged == f.expected_converged &&
                    result.activity.cycles == f.expected_cycles;
    if (!ok) ++mismatches;
  }
  return mismatches;
}

}  // namespace ldpc
