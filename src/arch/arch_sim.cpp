#include "arch/arch_sim.hpp"

#include <algorithm>

#include "analysis/column_order.hpp"

namespace ldpc {

ArchSimDecoder::ArchSimDecoder(const QCLdpcCode& code, HardwareEstimate estimate,
                               DecoderOptions options, FixedFormat format,
                               ArchSimConfig sim_config)
    : code_(code),
      estimate_(estimate),
      options_(options),
      sim_config_(sim_config),
      kernel_(format),
      p_mem_("P", code.base().cols(), static_cast<std::size_t>(code.z())),
      r_mem_("R", code.base().nonzero_blocks(), static_cast<std::size_t>(code.z())),
      shifter_(static_cast<std::size_t>(code.z())),
      q_fifo_(code.base().max_row_degree()),
      scoreboard_(code.base().cols()),
      lane_state_(static_cast<std::size_t>(code.z())) {
  LDPC_CHECK(options_.max_iterations > 0);
  LDPC_CHECK_MSG(estimate_.parallelism >= 1 &&
                     code.z() % estimate_.parallelism == 0,
                 "estimate parallelism " << estimate_.parallelism
                                         << " does not divide z=" << code.z());
  LDPC_CHECK(estimate_.fold == code.z() / estimate_.parallelism);
  fifo_pop_times_.assign(q_fifo_.capacity(), -1);

  // Optional fault injection: hand the SRAM macros their read-path hooks
  // and keep a handle for the datapath/scoreboard sites. With no injector
  // every hook below reduces to a null-pointer compare.
  injector_ = options_.fault_injector;
  if (injector_) {
    const int w = kernel_.format().total_bits;
    p_mem_.attach_fault_injector(injector_, FaultSite::kSramP, w);
    r_mem_.attach_fault_injector(injector_, FaultSite::kSramR, w);
    stale_p_.resize(code.base().cols());
  }

  // Column processing order per layer: the shared policy implementation in
  // analysis/column_order.hpp, so the static hazard analyzer sees exactly
  // the schedule this simulator executes.
  column_order_ =
      make_column_order(code_, sim_config_.hazard_aware_order
                                   ? ColumnOrderPolicy::kHazardAware
                                   : ColumnOrderPolicy::kBlockSerial);
}

void ArchSimDecoder::accumulate_busy(long long start, long long end,
                                     long long& busy_until,
                                     long long& busy_cycles) {
  const long long effective_start = std::max(start, busy_until + 1);
  if (end >= effective_start) {
    busy_cycles += end - effective_start + 1;
    busy_until = end;
  }
}

std::string ArchSimDecoder::name() const {
  return "arch-" + arch_name(estimate_.arch) + "-p" +
         std::to_string(estimate_.parallelism);
}

long long ArchSimDecoder::p_memory_bits() const {
  return p_mem_.capacity_bits(kernel_.format().total_bits);
}

long long ArchSimDecoder::r_memory_bits() const {
  return r_mem_.capacity_bits(kernel_.format().total_bits);
}

DecodeResult ArchSimDecoder::decode(std::span<const float> llr) {
  LDPC_CHECK(llr.size() == code_.n());
  quant_clips_ = 0;
  std::vector<std::int32_t> codes(llr.size());
  if (options_.count_saturation) {
    for (std::size_t v = 0; v < llr.size(); ++v)
      codes[v] = kernel_.format().quantize(llr[v], quant_clips_);
  } else {
    for (std::size_t v = 0; v < llr.size(); ++v)
      codes[v] = kernel_.format().quantize(llr[v]);
  }
  return decode_quantized(codes).decode;
}

void ArchSimDecoder::run_layer(std::size_t layer_index, Timing& timing,
                               ActivityCounters& act) {
  const auto& layer = code_.layers()[layer_index];
  const auto z = static_cast<std::size_t>(code_.z());
  const long long fold = estimate_.fold;
  const long long d1 = estimate_.core1_latency;
  const long long d2 = estimate_.core2_latency;
  const bool pipelined = estimate_.arch == ArchKind::kTwoLayerPipelined;

  // ---- Core 1: read & pre-process (stage 1) --------------------------------
  for (auto& st : lane_state_) st.reset();

  std::vector<long long> absorb_time(layer.size());

  const auto& order = column_order_[layer_index];

  long long core1_done = -1;
  for (std::size_t j = 0; j < layer.size(); ++j) {
    const auto& blk = layer[order[j]];
    long long ready = timing.core1_free;
    long long issue = ready;
    // Set when a scoreboard upset drops a pending bit: core 1 proceeds
    // without the RAW stall and reads the stale P word (§IV-B failure mode).
    bool raw_hazard = false;
    if (pipelined) {
      const bool pending = scoreboard_.is_pending(blk.block_col);
      const bool observed = scoreboard_.observed_pending(blk.block_col, injector_);
      // Scoreboard RAW stall on the P word of this block column.
      if (observed) {
        if (pending) {
          issue = scoreboard_.earliest_read(blk.block_col, ready);
        } else {
          // Spurious pending bit: core 1 waits for core 2's backlog to
          // drain before the (phantom) clear lets it proceed.
          issue = std::max(issue, timing.core2_free);
        }
      } else if (pending) {
        raw_hazard = true;
      }
      // Q FIFO back-pressure: this column's push (at absorb time) needs a
      // free slot; the slot frees one cycle after the blocking pop.
      if (fifo_push_count_ >= q_fifo_.capacity()) {
        const long long blocking_pop =
            fifo_pop_times_[(fifo_push_count_ - q_fifo_.capacity()) %
                            q_fifo_.capacity()];
        const long long earliest_issue = blocking_pop + 1 - (fold - 1) - (d1 - 1);
        issue = std::max(issue, earliest_issue);
      }
      act.core1_stall_cycles += issue - ready;
      if (pending) scoreboard_.resolve(blk.block_col);
      if (sim_config_.record_trace && issue > ready)
        trace_.push_back(TraceEvent{TraceEngine::kCore1,
                                    static_cast<std::size_t>(timing.layer_seq),
                                    ready, issue - 1, /*stall=*/true});
    }
    if (sim_config_.record_trace)
      trace_.push_back(TraceEvent{TraceEngine::kCore1,
                                  static_cast<std::size_t>(timing.layer_seq),
                                  issue, issue + fold - 1, false});
    timing.core1_free = issue + fold;
    // A depth-d pipeline started on cycle `issue` delivers at the end of
    // cycle issue + (fold - 1) + (d - 1).
    absorb_time[j] = issue + fold - 1 + (d1 - 1);
    core1_done = absorb_time[j];
    accumulate_busy(issue, absorb_time[j], timing.core1_busy_until,
                    act.core1_busy_cycles);

    // Functional stage 1 through the component models. A RAW hazard serves
    // the P word captured before core 2's still-in-flight write landed.
    const bool use_stale = raw_hazard && !stale_p_.empty() &&
                           !stale_p_[blk.block_col].empty();
    const auto& p_word =
        use_stale ? stale_p_[blk.block_col] : p_mem_.read(blk.block_col);
    const auto shifted = shifter_.rotate(p_word, blk.shift);
    const auto& r_word = r_mem_.read(blk.r_slot);
    std::vector<std::int32_t> q(z);
    for (std::size_t r = 0; r < z; ++r) {
      q[r] = kernel_.compute_q(shifted[r], r_word[r]);
      lane_state_[r].absorb(q[r], static_cast<std::uint32_t>(j));
    }
    q_fifo_.push(std::move(q));
    ++fifo_push_count_;
    if (pipelined) scoreboard_.set(blk.block_col);

    act.p_reads += 1;
    act.r_reads += 1;
    act.shifter_rotates += 1;
    act.core1_issue_beats += fold;
    act.min_array_updates += static_cast<long long>(z);
    act.q_fifo_pushes += 1;
  }
  timing.core1_done = core1_done;

  // Upsets in the held core-1 state arrays (min1/min2/sign registers of
  // Fig. 5/7) while the layer's state is handed to core 2.
  if (injector_ && (injector_->armed(FaultSite::kCoreMin1) ||
                    injector_->armed(FaultSite::kCoreMin2) ||
                    injector_->armed(FaultSite::kCoreSign))) {
    const int w = kernel_.format().total_bits;
    for (auto& st : lane_state_) {
      st.min1 = injector_->corrupt_magnitude(FaultSite::kCoreMin1, st.min1, w);
      st.min2 = injector_->corrupt_magnitude(FaultSite::kCoreMin2, st.min2, w);
      st.sign_product =
          injector_->corrupt_flag(FaultSite::kCoreSign, st.sign_product);
    }
  }

  // ---- Core 2: decode & write back (stage 2) -------------------------------
  long long core2_start = std::max(timing.core2_free, core1_done + 1);
  for (std::size_t j = 0; j < layer.size(); ++j) {
    const auto& blk = layer[order[j]];
    const long long issue = std::max(core2_start, absorb_time[j] + 1);
    core2_start = issue + fold;
    timing.core2_free = core2_start;
    const long long land = issue + fold - 1 + (d2 - 1);
    timing.last_write_land = std::max(timing.last_write_land, land);
    accumulate_busy(issue, land, timing.core2_busy_until,
                    act.core2_busy_cycles);
    if (pipelined) scoreboard_.schedule_clear(blk.block_col, land);
    fifo_pop_times_[(fifo_push_count_ - layer.size() + j) %
                    q_fifo_.capacity()] = issue;
    if (sim_config_.record_trace)
      trace_.push_back(TraceEvent{TraceEngine::kCore2,
                                  static_cast<std::size_t>(timing.layer_seq),
                                  issue, issue + fold - 1, false});

    // Functional stage 2.
    const auto q = q_fifo_.pop();
    std::vector<std::int32_t> r_new(z);
    std::vector<std::int32_t> p_new(z);
    for (std::size_t r = 0; r < z; ++r) {
      r_new[r] =
          kernel_.compute_r_new(lane_state_[r], q[r], static_cast<std::uint32_t>(j));
      p_new[r] = kernel_.compute_p_new(q[r], r_new[r]);
    }
    r_mem_.write(blk.r_slot, std::move(r_new));
    // Capture the outgoing P word while scoreboard upsets are possible: a
    // dropped pending bit makes the next layer's core 1 read this value.
    if (injector_ && injector_->armed(FaultSite::kScoreboard))
      stale_p_[blk.block_col] = p_mem_.peek(blk.block_col);
    p_mem_.write(blk.block_col, shifter_.rotate_back(p_new, blk.shift));

    act.p_writes += 1;
    act.r_writes += 1;
    act.shifter_rotates += 1;
    act.core2_issue_beats += fold;
    act.q_fifo_pops += 1;
  }

  // Per-layer architecture: the next layer's reads wait for every write of
  // this layer to land (no scoreboard, so the schedule serializes).
  if (!pipelined)
    timing.core1_free = std::max(timing.core1_free, timing.last_write_land + 1);

  // Shifter busy: one rotate per column read and one per write-back; the
  // rotations coincide with distinct issue beats of their cores.
  act.shifter_busy_cycles += static_cast<long long>(layer.size()) * 2;
  act.layer_snapshots += 1;  // core1 state handed to core2 once per layer
  ++timing.layer_seq;
}

ArchDecodeResult ArchSimDecoder::decode_quantized(
    std::span<const std::int32_t> channel_codes) {
  LDPC_CHECK(channel_codes.size() == code_.n());
  const auto z = static_cast<std::size_t>(code_.z());
  const std::size_t nb = code_.base().cols();

  // Load channel LLRs into the P memory (external DMA; not part of the
  // decode cycle count) and reset R, FIFO, scoreboard, counters.
  for (std::size_t c = 0; c < nb; ++c) {
    std::vector<std::int32_t> word(z);
    for (std::size_t r = 0; r < z; ++r) word[r] = channel_codes[c * z + r];
    p_mem_.write(c, std::move(word));
  }
  r_mem_.fill(0);
  p_mem_.reset_counters();
  r_mem_.reset_counters();
  shifter_.reset_counters();
  q_fifo_.reset();
  scoreboard_.reset();
  std::fill(fifo_pop_times_.begin(), fifo_pop_times_.end(), -1);
  fifo_push_count_ = 0;
  trace_.clear();

  ArchDecodeResult out;
  out.decode.hard_bits.resize(code_.n());

  Timing timing;
  ActivityCounters& act = out.activity;

  sat_ = SaturationStats{};
  kernel_.track_saturation(options_.count_saturation ? &sat_ : nullptr);
  const long long injections_before = injector_ ? injector_->injections() : 0;
  WatchdogState watchdog(options_.watchdog);
  bool watchdog_fired = false;

  auto harvest_hard_bits = [&] {
    for (std::size_t c = 0; c < nb; ++c) {
      const auto& word = p_mem_.peek(c);
      for (std::size_t r = 0; r < z; ++r)
        out.decode.hard_bits.set(c * z + r, word[r] < 0);
    }
  };

  for (std::size_t iter = 1; iter <= options_.max_iterations; ++iter) {
    out.decode.iterations = iter;
    for (std::size_t l = 0; l < code_.num_layers(); ++l)
      run_layer(l, timing, act);

    if (iter == 1) out.first_iteration_cycles = timing.last_write_land + 1;

    harvest_hard_bits();
    if (options_.early_termination) {
      // The syndrome verdict gates the next iteration: all writes must have
      // landed, plus the configured check latency.
      if (sim_config_.et_check_cycles > 0) {
        timing.last_write_land += sim_config_.et_check_cycles;
        timing.core1_free =
            std::max(timing.core1_free, timing.last_write_land + 1);
      }
      if (code_.parity_ok(out.decode.hard_bits)) {
        out.decode.converged = true;
        break;
      }
    }
    if (options_.watchdog.enabled() &&
        watchdog.should_abort(code_.syndrome_weight(out.decode.hard_bits))) {
      watchdog_fired = true;
      break;
    }
  }
  // Parity recheck on output: corrupted decodes leave here flagged, never
  // silently marked as codewords.
  if (!out.decode.converged)
    out.decode.converged = code_.parity_ok(out.decode.hard_bits);
  if (injector_)
    out.decode.faults_injected = static_cast<std::size_t>(
        injector_->injections() - injections_before);
  out.decode.status = classify_exit(out.decode.converged, watchdog_fired,
                                    out.decode.faults_injected);

  act.cycles = timing.last_write_land + 1;
  act.iterations = static_cast<long long>(out.decode.iterations);
  sat_.datapath_clips = sat_.q_clips + sat_.r_clips + sat_.p_clips;
  act.sat_clips = sat_.datapath_clips;
  act.faults_injected = static_cast<long long>(out.decode.faults_injected);
  return out;
}

}  // namespace ldpc
