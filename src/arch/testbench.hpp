// Testbench generation — the PICO flow's verification collateral ("the PICO
// system automatically generates ... customized test benches", §II).
//
// A testbench bundles stimulus (quantized channel LLRs) with the golden
// responses measured on the cycle-accurate simulator (hard decisions,
// iteration and cycle counts). Serialized as a line-oriented text format so
// an RTL simulation can replay it; round-trip and self-check are tested.
#pragma once

#include <iosfwd>
#include <vector>

#include "arch/arch_sim.hpp"
#include "codes/qc_code.hpp"

namespace ldpc {

struct TestbenchFrame {
  std::vector<std::int32_t> channel_codes;  ///< stimulus, n values
  BitVec expected_hard;                     ///< golden response
  std::size_t expected_iterations = 0;
  bool expected_converged = false;
  long long expected_cycles = 0;
};

struct Testbench {
  // Identity of the design point the vectors were generated for.
  std::string code_name;
  std::size_t n = 0;
  int z = 0;
  int msg_bits = 0;
  ArchKind arch = ArchKind::kPerLayer;
  double clock_mhz = 0.0;
  int parallelism = 0;
  std::size_t max_iterations = 0;
  std::vector<TestbenchFrame> frames;
};

/// Generate `n_frames` noisy-frame vectors at `ebn0_db` through `sim` (which
/// defines the golden behaviour). Deterministic in `seed`.
Testbench generate_testbench(const QCLdpcCode& code, ArchSimDecoder& sim,
                             std::size_t n_frames, float ebn0_db,
                             std::uint64_t seed);

/// Text serialization (round-trips exactly).
void write_testbench(std::ostream& out, const Testbench& tb);
Testbench read_testbench(std::istream& in);

/// Replay the stimulus on `sim` and compare every golden field. Returns the
/// number of mismatching frames (0 = pass).
std::size_t verify_testbench(const Testbench& tb, ArchSimDecoder& sim);

}  // namespace ldpc
