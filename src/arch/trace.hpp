// Schedule traces: per-cycle engine occupancy from the architecture
// simulator, and an ASCII timeline renderer that reproduces the paper's
// Fig. 4 / Fig. 6 scheduling diagrams from measured data.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ldpc {

enum class TraceEngine { kCore1, kCore2 };

struct TraceEvent {
  TraceEngine engine;
  std::size_t layer;     ///< layer index within the decode (not mod L)
  long long start;       ///< first busy cycle
  long long end;         ///< last busy cycle (inclusive)
  bool stall = false;    ///< true: engine waited (scoreboard / FIFO)
};

/// Render events in [from, to) as a two-lane ASCII timeline:
///
///   cycle  0         1         2
///          0123456789012345678901234567890
///   core1  000000.111111x.222222...
///   core2  ......000000...111111...
///
/// Busy cycles print the layer index mod 10, stalls print 'x', idle '.'.
/// Overlapping events on the same lane are an error (the simulator never
/// double-books an engine).
std::string render_timeline(const std::vector<TraceEvent>& events,
                            long long from, long long to);

}  // namespace ldpc
