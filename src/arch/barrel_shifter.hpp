// Logarithmic barrel rotator (the barrel_shifter() block of Fig. 5/7).
//
// Rotates a z-lane message vector so that lane r of the datapath receives
// the variable node (r + shift) mod z of the block column — the circulant
// alignment. The inverse rotation realigns core 2's results for write-back.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ldpc {

class BarrelShifter {
 public:
  explicit BarrelShifter(std::size_t z) : z_(z) { LDPC_CHECK(z >= 1); }

  std::size_t z() const { return z_; }
  long long rotations() const { return rotations_; }
  void reset_counters() { rotations_ = 0; }

  /// out[r] = in[(r + shift) % z] — multiplication by circulant P^shift.
  std::vector<std::int32_t> rotate(const std::vector<std::int32_t>& in,
                                   std::uint32_t shift) {
    LDPC_CHECK(in.size() == z_);
    ++rotations_;
    std::vector<std::int32_t> out(z_);
    for (std::size_t r = 0; r < z_; ++r) out[r] = in[(r + shift) % z_];
    return out;
  }

  /// Inverse alignment: out[(r + shift) % z] = in[r].
  std::vector<std::int32_t> rotate_back(const std::vector<std::int32_t>& in,
                                        std::uint32_t shift) {
    LDPC_CHECK(in.size() == z_);
    ++rotations_;
    std::vector<std::int32_t> out(z_);
    for (std::size_t r = 0; r < z_; ++r) out[(r + shift) % z_] = in[r];
    return out;
  }

 private:
  std::size_t z_;
  long long rotations_ = 0;
};

}  // namespace ldpc
