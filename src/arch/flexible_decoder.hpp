// The paper's §V deliverable: "A flexible LDPC decoder which fully supports
// the IEEE 802.16e WiMAX standard".
//
// One hardware instance — memories provisioned for the worst-case rate
// family and expansion factor, z = 96 datapath lanes — reconfigured per
// frame by selecting a (rate family, z) pair. The model holds one
// cycle-accurate simulator per active configuration (hardware reality: the
// same arrays indexed under different control programs; software reality:
// per-code connectivity is precomputed) and reports the worst-case memory
// complement the single silicon instance must carry.
#pragma once

#include <map>
#include <memory>

#include "arch/arch_sim.hpp"
#include "codes/wimax.hpp"

namespace ldpc {

struct WimaxCodeId {
  WimaxRate rate = WimaxRate::kRate1_2;
  int z = 96;

  bool operator<(const WimaxCodeId& other) const {
    return rate != other.rate ? rate < other.rate : z < other.z;
  }
};

class FlexibleWimaxDecoder {
 public:
  /// `clock_mhz` and `format` fix the silicon instance; every 802.16e
  /// (rate, z) combination is then decodable. Parallelism is the full 96
  /// lanes (smaller-z codes use a z-lane subset, as the real decoder does).
  FlexibleWimaxDecoder(double clock_mhz = 400.0, FixedFormat format = FixedFormat{8, 2},
                       ArchKind arch = ArchKind::kTwoLayerPipelined,
                       bool hazard_aware_order = true);

  /// Decode one frame of n = 24 z LLRs for the selected code. Throws
  /// ldpc::Error for invalid (rate, z) combinations.
  ArchDecodeResult decode(const WimaxCodeId& id, std::span<const float> llr);

  /// The code object for a configuration (valid until the decoder dies).
  const QCLdpcCode& code(const WimaxCodeId& id);

  /// Hardware estimate of a configuration's control program.
  const HardwareEstimate& estimate(const WimaxCodeId& id);

  /// Worst-case SRAM complement the silicon must provision (bits): P memory
  /// at z = 96 plus R memory for the densest rate family — the Table II
  /// "Memory (SRAM)" number.
  long long provisioned_sram_bits() const;

  double clock_mhz() const { return clock_mhz_; }
  FixedFormat format() const { return format_; }

  /// Number of configurations instantiated so far (for tests).
  std::size_t active_configurations() const { return instances_.size(); }

  /// Route all configurations' decodes through `injector` (nullptr detaches).
  /// Existing per-configuration simulators are rebuilt lazily so the hook
  /// applies uniformly; injector must outlive the decoder while attached.
  void set_fault_injector(FaultInjector* injector);

  /// Enable the non-convergence watchdog on every configuration.
  void set_watchdog(WatchdogOptions watchdog);

 private:
  struct Instance {
    QCLdpcCode code;
    HardwareEstimate estimate;
    std::unique_ptr<ArchSimDecoder> sim;
  };

  Instance& instance_for(const WimaxCodeId& id);

  double clock_mhz_;
  FixedFormat format_;
  ArchKind arch_;
  bool hazard_aware_order_;
  DecoderOptions options_;
  std::map<WimaxCodeId, Instance> instances_;
};

}  // namespace ldpc
