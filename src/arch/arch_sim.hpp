// Cycle-accurate simulator of the paper's two decoder architectures.
//
// The simulator executes the real decoding computation through hardware
// component models — P/R SRAMs, barrel shifter, z datapath lanes running
// LayerRowKernel, Q array/FIFO, scoreboard — while an analytic timing engine
// assigns every block-column operation an issue cycle under the
// architecture's structural constraints:
//
//   per-layer (Fig. 4):   core2(l) starts after core1(l) drains; core1(l+1)
//                         starts after core2(l)'s last write lands.
//   pipelined (Fig. 6):   core1(l+1) overlaps core2(l); per-column stalls
//                         from the scoreboard (RAW on P words) and from Q
//                         FIFO back-pressure.
//
// Because the arithmetic is the same LayerRowKernel the algorithmic decoder
// uses and the stall logic enforces layer-sequential P semantics, the
// simulator's hard decisions are bit-identical to LayeredMinSumFixedDecoder
// — an invariant the integration tests assert for every supported code and
// parallelism.
#pragma once

#include <memory>

#include "arch/activity.hpp"
#include "arch/barrel_shifter.hpp"
#include "arch/q_fifo.hpp"
#include "arch/scoreboard.hpp"
#include "arch/sram.hpp"
#include "arch/trace.hpp"
#include "codes/qc_code.hpp"
#include "core/decoder.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "hls/pico.hpp"

namespace ldpc {

struct ArchDecodeResult {
  DecodeResult decode;
  ActivityCounters activity;
  /// Cycles of the first full iteration (the Fig. 8a metric; excludes the
  /// dependence of later iterations on early termination).
  long long first_iteration_cycles = 0;
};

/// Simulator knobs beyond what the hardware estimate fixes.
struct ArchSimConfig {
  /// Process each layer's block columns in a hazard-aware order: columns not
  /// written by the previous layer first, shared columns last and in the
  /// previous layer's write order. Functionally invisible (the min update is
  /// order independent and the scoreboard still enforces RAW), but it hides
  /// most pipeline stalls — the schedule optimization a designer would bake
  /// into the parity-check-matrix ROM ordering.
  bool hazard_aware_order = false;
  /// Record per-column TraceEvents during decoding (see arch/trace.hpp);
  /// retrieve with trace(). Off by default — BER sweeps don't want the
  /// allocation churn.
  bool record_trace = false;
  /// Cycles the early-termination syndrome check costs between iterations
  /// when early_termination is enabled. 0 (default) models the paper's
  /// on-the-fly check: parity accumulates in XOR trees as core 2 writes, so
  /// the verdict is free by the time the iteration drains. A dedicated
  /// check pass over L layers would cost ~L cycles — set this to model it.
  int et_check_cycles = 0;
};

class ArchSimDecoder final : public Decoder {
 public:
  /// `estimate` supplies the pipeline depths/parallelism the PICO model
  /// produced for the chosen clock target. The code must outlive the sim.
  ArchSimDecoder(const QCLdpcCode& code, HardwareEstimate estimate,
                 DecoderOptions options, FixedFormat format = FixedFormat{},
                 ArchSimConfig sim_config = ArchSimConfig{});

  /// Decoder interface (quantizes internally).
  DecodeResult decode(std::span<const float> llr) override;
  std::size_t n() const override { return code_.n(); }
  std::size_t k() const override { return code_.k(); }
  std::string name() const override;

  /// Full result with activity counters.
  ArchDecodeResult decode_quantized(std::span<const std::int32_t> channel_codes);

  const HardwareEstimate& estimate() const { return estimate_; }

  /// Memory capacities (Table II "Memory (SRAM)" row).
  long long p_memory_bits() const;
  long long r_memory_bits() const;

  /// Schedule trace of the last decode (empty unless record_trace was set).
  const std::vector<TraceEvent>& trace() const { return trace_; }

  /// Channel-LLR quantizer clips of the last decode() call (0 unless
  /// DecoderOptions::count_saturation; decode_quantized() bypasses this).
  long long quantizer_clips() const { return quant_clips_; }

  /// Per-site saturation accounting of the last decode — same layout as the
  /// algorithmic decoders, so the static range verifier's cross-check can
  /// run against the cycle-accurate model too.
  SaturationStats saturation() const override {
    SaturationStats s = sat_;
    s.quantizer_clips = quant_clips_;
    return s;
  }

 private:
  /// Timing state for one decode.
  struct Timing {
    long long core1_free = 0;   ///< first cycle core1 may issue next beat
    long long core2_free = 0;   ///< first cycle core2 may issue next beat
    long long core1_done = -1;  ///< absorb completion of current layer
    long long last_write_land = -1;
    long long stalls = 0;
    // Busy-window union tracking for the clock-gating model (a block is
    // "busy" from a column's issue until its pipeline drains; overlapping
    // windows must not be double counted).
    long long core1_busy_until = -1;
    long long core2_busy_until = -1;
    long long layer_seq = 0;  ///< global layer counter for trace labels
  };

  /// Add window [start, end] to a busy-union accumulator.
  static void accumulate_busy(long long start, long long end,
                              long long& busy_until, long long& busy_cycles);

  void run_layer(std::size_t layer_index, Timing& timing, ActivityCounters& act);

  const QCLdpcCode& code_;
  HardwareEstimate estimate_;
  DecoderOptions options_;
  ArchSimConfig sim_config_;
  LayerRowKernel kernel_;

  /// Per-layer column processing order (indices into code_.layers()[l]).
  std::vector<std::vector<std::size_t>> column_order_;

  SramModel p_mem_;
  SramModel r_mem_;
  BarrelShifter shifter_;
  QFifo q_fifo_;
  Scoreboard scoreboard_;

  /// Per-lane core-1 state (min1/min2/pos1/sign for check row `lane`).
  std::vector<LayerRowKernel::CheckState> lane_state_;

  /// Pop times of the q-FIFO entries still counted against capacity, used
  /// by the timing engine for back-pressure (ring of the last `capacity`).
  std::vector<long long> fifo_pop_times_;
  std::size_t fifo_push_count_ = 0;

  std::vector<TraceEvent> trace_;

  /// Fault injection (nullptr when DecoderOptions::fault_injector is unset —
  /// the hooks then cost one pointer compare and decode bit-identically to
  /// the seed path).
  FaultInjector* injector_ = nullptr;
  /// P words captured just before core 2 overwrites them, indexed by block
  /// column; served to core 1 when a scoreboard upset drops a pending bit
  /// (the §IV-B RAW hazard reading stale data). Maintained only while the
  /// scoreboard fault site is armed.
  std::vector<std::vector<std::int32_t>> stale_p_;

  long long quant_clips_ = 0;
  SaturationStats sat_;  ///< datapath sites; quantizer tracked separately
};

}  // namespace ldpc
