#include "harq/rate_matching.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace ldpc {

namespace {

/// Golden-stride permutation step over `m` positions: the stride closest to
/// m / phi that is coprime with m, so i -> (i * stride) mod m is a
/// permutation whose prefixes are near-uniformly spread — the property that
/// makes any puncture count hit every parity block about equally.
std::size_t golden_stride(std::size_t m) {
  constexpr double kInvPhi = 0.6180339887498949;
  auto stride = static_cast<std::size_t>(
      std::llround(static_cast<double>(m) * kInvPhi));
  stride = std::max<std::size_t>(stride, 1);
  while (std::gcd(stride, m) != 1) ++stride;
  return stride;
}

}  // namespace

RateMatcher::RateMatcher(const QCLdpcCode& code, double target_rate,
                         std::size_t ir_chunk_bits) {
  const std::size_t n = code.n();
  const std::size_t k = code.k();
  const std::size_t m = n - k;
  const auto z = static_cast<std::size_t>(code.z());
  const double mother_rate = code.rate();
  LDPC_CHECK_MSG(target_rate == 0.0 ||
                     (target_rate > 0.0 && target_rate < 1.0),
                 "target rate must be in (0, 1), got " << target_rate);
  ir_chunk_ = ir_chunk_bits == 0 ? z : ir_chunk_bits;

  // Parity positions in reveal order: the golden-stride permutation of
  // [k, n). Punctured = the first p entries; the initial transmission
  // carries the rest.
  const std::size_t stride = golden_stride(m);
  std::vector<std::size_t> parity_order(m);
  for (std::size_t i = 0; i < m; ++i)
    parity_order[i] = k + (i * stride) % m;

  std::size_t punctured = 0;
  std::size_t shortened = 0;
  if (target_rate > mother_rate) {
    // k / (n - p) = Rt  ->  p = n - k / Rt.
    const auto n_tx = static_cast<std::size_t>(
        std::llround(static_cast<double>(k) / target_rate));
    LDPC_CHECK_MSG(n_tx >= k + z,
                   "target rate " << target_rate << " leaves fewer than z="
                                  << z << " parity bits of the mother code");
    punctured = n - n_tx;
  } else if (target_rate > 0.0 && target_rate < mother_rate) {
    // (k - s) / (n - s) = Rt  ->  s = (k - Rt n) / (1 - Rt).
    const auto s = static_cast<std::size_t>(std::llround(
        (static_cast<double>(k) - target_rate * static_cast<double>(n)) /
        (1.0 - target_rate)));
    LDPC_CHECK_MSG(s < k, "target rate " << target_rate
                                         << " shortens away every info bit");
    shortened = s;
  }

  punctured_.assign(parity_order.begin(),
                    parity_order.begin() +
                        static_cast<std::ptrdiff_t>(punctured));
  shortened_.resize(shortened);
  for (std::size_t i = 0; i < shortened; ++i)
    shortened_[i] = k - shortened + i;
  info_bits_ = k - shortened;

  std::vector<bool> skip(n, false);
  for (const std::size_t p : punctured_) skip[p] = true;
  for (const std::size_t s : shortened_) skip[s] = true;
  initial_.reserve(n - punctured - shortened);
  for (std::size_t i = 0; i < n; ++i)
    if (!skip[i]) initial_.push_back(i);
}

std::vector<std::size_t> RateMatcher::ir_positions(std::size_t tx) const {
  LDPC_CHECK(tx >= 1);
  if (tx == 1) return initial_;
  // Retransmissions walk the punctured list chunk by chunk, then cycle over
  // the initial transmission once nothing is left to reveal.
  const std::size_t ir_rounds =
      punctured_.empty() ? 0 : (punctured_.size() + ir_chunk_ - 1) / ir_chunk_;
  const std::size_t round = tx - 2;
  if (round < ir_rounds) {
    const std::size_t begin = round * ir_chunk_;
    const std::size_t end = std::min(begin + ir_chunk_, punctured_.size());
    return {punctured_.begin() + static_cast<std::ptrdiff_t>(begin),
            punctured_.begin() + static_cast<std::ptrdiff_t>(end)};
  }
  return initial_;
}

}  // namespace ldpc
