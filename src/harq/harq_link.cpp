#include "harq/harq_link.hpp"

#include <algorithm>
#include <utility>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "channel/rayleigh.hpp"
#include "codes/encoder.hpp"
#include "harq/llr_buffer.hpp"
#include "runtime/supervisor.hpp"
#include "util/check.hpp"

namespace ldpc {

namespace {

/// Frames issued between waves — a constant (never a function of worker
/// count) so the simulated frame set is identical for any num_workers.
constexpr std::size_t kWaveFrames = 32;

/// Receiver-side state of one HARQ process. Mutated only by the frame's own
/// strictly-sequential attempts (initial task + redundancy hook), so no
/// locking is needed; read by the accumulator only after the wave drains.
struct FrameState {
  FrameState(std::size_t n, std::size_t k, float rail)
      : info(k), codeword(n), buffer(n, rail) {}

  BitVec info;
  BitVec codeword;
  LlrBuffer buffer;
  std::size_t symbols_sent = 0;
};

/// Put the codeword bits at `positions` on the channel and return their
/// LLRs (parallel to `positions`). Adds the symbols used to *symbols_out.
std::vector<float> transmit_positions(const HarqLinkConfig& config,
                                      const BitVec& codeword,
                                      const std::vector<std::size_t>& positions,
                                      float variance,
                                      std::uint64_t channel_seed,
                                      std::size_t* symbols_out) {
  BitVec bits(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i)
    bits.set(i, codeword.get(positions[i]));
  const std::size_t n = positions.size();

  std::vector<float> symbols;
  switch (config.modulation) {
    case Modulation::kBpsk:  symbols = BpskModem::modulate(bits); break;
    case Modulation::kQpsk:  symbols = QpskModem::modulate(bits); break;
    case Modulation::kQam16: symbols = Qam16Modem::modulate(bits); break;
    case Modulation::kQam64: symbols = Qam64Modem::modulate(bits); break;
  }
  const bool complex_mod = config.modulation != Modulation::kBpsk;
  *symbols_out += complex_mod ? symbols.size() / 2 : symbols.size();

  if (config.channel == ChannelModel::kAwgn) {
    AwgnChannel awgn(variance, channel_seed);
    const auto received = awgn.transmit(symbols);
    switch (config.modulation) {
      case Modulation::kBpsk:
        return BpskModem::demodulate(received, variance);
      case Modulation::kQpsk:
        return QpskModem::demodulate(received, variance, n);
      case Modulation::kQam16:
        return Qam16Modem::demodulate(received, variance, n);
      case Modulation::kQam64:
        return Qam64Modem::demodulate(received, variance, n);
    }
  }
  RayleighChannel fading(variance, channel_seed, config.coherence_symbols);
  std::vector<float> gains;
  if (config.modulation == Modulation::kBpsk) {
    const auto received = fading.transmit(symbols, gains);
    return RayleighChannel::demodulate_bpsk(received, gains, variance);
  }
  const auto received = fading.transmit_iq(symbols, gains);
  switch (config.modulation) {
    case Modulation::kQpsk:
      return RayleighChannel::demodulate_qpsk(received, gains, variance, n);
    case Modulation::kQam16:
      return RayleighChannel::demodulate_qam16(received, gains, variance, n);
    default:
      return RayleighChannel::demodulate_qam64(received, gains, variance, n);
  }
}

}  // namespace

HarqLinkRunner::HarqLinkRunner(const QCLdpcCode& code, DecoderFactory factory,
                               HarqLinkConfig config)
    : code_(code),
      factory_(std::move(factory)),
      config_(std::move(config)),
      matcher_(code, config_.target_rate, config_.ir_chunk_bits),
      rail_(config_.format.dequantize(config_.format.max_code())) {
  LDPC_CHECK(factory_ != nullptr);
  LDPC_CHECK(!config_.ebn0_db.empty());
  LDPC_CHECK(config_.frames_per_point >= 1);
  LDPC_CHECK(config_.max_transmissions >= 1);
  LDPC_CHECK(config_.num_workers >= 1);
  validate(config_.format);
}

std::vector<HarqPoint> HarqLinkRunner::run() {
  std::vector<HarqPoint> points;
  points.reserve(config_.ebn0_db.size());
  for (std::size_t i = 0; i < config_.ebn0_db.size(); ++i)
    points.push_back(run_point(config_.ebn0_db[i], i));
  return points;
}

HarqPoint HarqLinkRunner::run_point(float ebn0_db, std::size_t point_index) {
  HarqPoint point;
  point.ebn0_db = ebn0_db;

  // Eb/N0 is accounted at the rate the link actually runs at (after
  // puncturing/shortening), per information bit actually carried.
  const float variance =
      awgn_noise_variance(ebn0_db, matcher_.effective_rate(),
                          modulation_bits_per_symbol(config_.modulation));
  const RuEncoder encoder(code_);

  // Wave-local receiver state; `wave_base` maps the supervisor's global
  // frame_index back to a slot. A wave fully drains before the next one is
  // issued, so slots are never shared between in-flight frames.
  std::vector<FrameState> states;
  states.reserve(kWaveFrames);
  for (std::size_t i = 0; i < kWaveFrames; ++i)
    states.emplace_back(code_.n(), code_.k(), rail_);
  std::size_t wave_base = 0;

  // The NACK path: fold transmission `tx` = next_attempt into the frame's
  // buffer, or report the budget spent. Runs on a worker thread, but only
  // ever for its own frame's strictly-sequential attempt chain.
  auto redundancy_hook = [&](std::size_t frame_index,
                             std::size_t next_attempt) -> bool {
    const std::size_t tx = next_attempt;  // attempt a consumes transmission a
    if (tx > config_.max_transmissions) return false;
    FrameState& st = states[frame_index - wave_base];
    std::vector<std::size_t> positions;
    bool type1_replace = false;
    switch (config_.mode) {
      case HarqMode::kPlainRetry:
        positions = matcher_.initial_positions();
        type1_replace = true;
        break;
      case HarqMode::kChase:
        positions = matcher_.initial_positions();
        break;
      case HarqMode::kIncremental:
        positions = matcher_.ir_positions(tx);
        break;
    }
    const auto llr = transmit_positions(
        config_, st.codeword, positions, variance,
        harq_tx_seed(config_.seed, point_index, frame_index, tx),
        &st.symbols_sent);
    if (type1_replace)
      st.buffer.replace(positions, llr);
    else
      st.buffer.combine(positions, llr);
    return true;
  };

  const auto ladder =
      harq_escalation_ladder(config_.max_iterations, config_.format);
  DecoderOptions base;
  base.max_iterations = config_.max_iterations;
  SupervisorConfig supervisor_config;
  supervisor_config.engine.num_workers = config_.num_workers;
  supervisor_config.engine.queue_capacity = kWaveFrames;
  supervisor_config.engine.escalation_factories =
      make_escalation_factories(code_, base, ladder);
  // One attempt per transmission, plus one more whose redundancy request
  // the hook refuses — that refusal is what yields the *typed*
  // kHarqExhausted instead of a generic attempt-exhaustion.
  supervisor_config.retry = RetryPolicy::none();
  supervisor_config.retry.max_attempts = config_.max_transmissions + 1;
  supervisor_config.rung_kinds = rung_kinds_of(ladder);
  supervisor_config.on_redundancy_request = redundancy_hook;
  DecodeSupervisor supervisor(factory_, supervisor_config);

  // Attempt 1 builds the frame (info, encode, initial transmission);
  // attempts >= 2 re-decode the buffer the hook just updated.
  auto run_frame = [&](std::size_t frame,
                       FrameState* st) -> DecodeSupervisor::TaskFactory {
    return [&, frame, st](std::size_t attempt) -> BatchEngine::Task {
      return [&, frame, st, attempt](Decoder& decoder) {
        LDPC_CHECK(decoder.n() == code_.n());
        if (attempt == 1) {
          st->buffer.reset();
          st->symbols_sent = 0;
          Xoshiro256 info_rng(
              harq_tx_seed(config_.seed, point_index, frame, 0));
          st->info = BitVec(code_.k());
          for (std::size_t i = 0; i < matcher_.info_bits(); ++i)
            st->info.set(i, info_rng.coin());  // shortened bits stay 0
          st->codeword = encoder.encode(st->info);
          st->buffer.pin(matcher_.shortened_positions(), rail_);
          const auto& positions = matcher_.initial_positions();
          const auto llr = transmit_positions(
              config_, st->codeword, positions, variance,
              harq_tx_seed(config_.seed, point_index, frame, 1),
              &st->symbols_sent);
          st->buffer.combine(positions, llr);
        }
        return decoder.decode(st->buffer.emit());
      };
    };
  };

  std::vector<DecodeResult> slots(kWaveFrames);
  while (wave_base < config_.frames_per_point) {
    const std::size_t wave =
        std::min(kWaveFrames, config_.frames_per_point - wave_base);
    for (std::size_t i = 0; i < wave; ++i) {
      const SubmitStatus submitted = supervisor.submit_task(
          wave_base + i, run_frame(wave_base + i, &states[i]), &slots[i]);
      LDPC_CHECK_MSG(submit_accepted(submitted),
                     "HARQ frame rejected: " << to_string(submitted));
    }
    supervisor.drain();
    for (std::size_t i = 0; i < wave; ++i) {
      const FrameState& st = states[i];
      const DecodeResult& result = slots[i];
      ++point.frames;
      point.total_transmissions += st.buffer.transmissions();
      point.total_symbols += st.symbols_sent;
      point.combiner_clips += st.buffer.saturation().quantizer_clips;
      std::size_t errors = 0;
      for (std::size_t b = 0; b < matcher_.info_bits(); ++b)
        if (result.hard_bits.get(b) != st.info.get(b)) ++errors;
      point.bit_errors += errors;
      if (result.status == DecodeStatus::kConverged) {
        ++point.delivered;
        if (errors == 0) ++point.delivered_correct;
      }
      if (result.status == DecodeStatus::kHarqExhausted)
        ++point.harq_exhausted;
      if (result.status != DecodeStatus::kConverged || errors > 0)
        ++point.frame_errors;
    }
    wave_base += wave;
  }

  point.redundancy_requests =
      supervisor.metrics().retry.redundancy_requests;
  return point;
}

}  // namespace ldpc
