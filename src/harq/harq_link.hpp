// Closed-loop HARQ link simulation: modulate -> channel -> demap -> decode
// -> NACK -> retransmit, driven by the retry-escalation supervisor.
//
// The loop is the receiving end of a stop-and-wait HARQ process. Every
// frame gets an LlrBuffer (harq/llr_buffer.hpp); the initial transmission
// fills it, and each failed decode climbs the supervisor's
// kRequestRedundancy rung (runtime/retry_policy.hpp), whose hook folds one
// more transmission into the buffer:
//   * kPlainRetry — type-I: the retransmission REPLACES the buffer (no
//     combining), the baseline every HARQ scheme must beat;
//   * kChase      — the full initial transmission is re-sent and ADDED
//     (repetition coding: ~3 dB per doubling on the combined positions);
//   * kIncremental — the RateMatcher's IR schedule reveals previously
//     punctured parity (new information, at a fraction of the symbols of a
//     full re-send), cycling into chase once nothing is left to reveal.
// When the transmission budget is exhausted the frame resolves exactly
// once with DecodeStatus::kHarqExhausted — the typed outcome the link
// layer acts on (drop or hand to a higher-layer ARQ).
//
// Determinism contract (same as channel/ber_runner.hpp): every random draw
// is keyed by (seed, point, frame, tx) — never by worker or wall clock —
// frames are issued in fixed waves and accumulated in frame order, so a
// sweep is bit-identical for any worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "channel/ber_runner.hpp"
#include "codes/qc_code.hpp"
#include "core/decoder_factory.hpp"
#include "core/quant.hpp"
#include "harq/rate_matching.hpp"
#include "util/rng.hpp"

namespace ldpc {

enum class HarqMode : std::uint8_t {
  kPlainRetry,   ///< type-I: retransmit and replace, no combining
  kChase,        ///< retransmit initial set, add LLRs
  kIncremental,  ///< reveal punctured parity chunk by chunk, add LLRs
};

inline const char* to_string(HarqMode m) {
  switch (m) {
    case HarqMode::kPlainRetry:  return "plain-retry";
    case HarqMode::kChase:       return "chase";
    case HarqMode::kIncremental: return "incremental";
  }
  return "?";
}

/// Channel seed for transmission `tx` (1-based) of one frame of one sweep
/// point: a splitmix64 stream keyed by all four coordinates. Seeding by tx
/// — not by attempt bookkeeping or worker — is what makes a retransmission
/// an independent channel use while keeping the sweep worker-invariant.
inline std::uint64_t harq_tx_seed(std::uint64_t seed, std::size_t point_index,
                                  std::size_t frame_index, std::size_t tx) {
  std::uint64_t sm = seed + 0x9e3779b97f4a7c15ULL * (point_index + 1);
  sm ^= 0xd1b54a32d192ed03ULL * (frame_index + 1);
  sm += 0xbf58476d1ce4e5b9ULL * tx;
  return splitmix64(sm);
}

struct HarqLinkConfig {
  std::vector<float> ebn0_db;          ///< sweep points
  std::size_t frames_per_point = 256;  ///< frames simulated per point
  /// Transmission budget per frame, including the initial one (1 = no
  /// HARQ). Exhaustion resolves the frame as kHarqExhausted.
  std::size_t max_transmissions = 4;
  HarqMode mode = HarqMode::kChase;
  /// 0 keeps the mother code rate; otherwise the RateMatcher
  /// punctures/shortens to this rate (kIncremental needs a punctured code
  /// to have redundancy to reveal).
  double target_rate = 0.0;
  std::size_t ir_chunk_bits = 0;  ///< 0 = one circulant (z bits) per IR tx
  Modulation modulation = Modulation::kQpsk;
  ChannelModel channel = ChannelModel::kAwgn;
  std::size_t coherence_symbols = 1;  ///< Rayleigh block-fading coherence
  unsigned num_workers = 1;
  std::uint64_t seed = 2009;
  std::size_t max_iterations = 10;  ///< per decode attempt
  FixedFormat format;               ///< decoder input quantization
};

/// One Eb/N0 point of a HARQ link sweep.
struct HarqPoint {
  float ebn0_db = 0.0F;
  std::size_t frames = 0;
  std::size_t delivered = 0;  ///< frames ACKed (decoder converged)
  std::size_t delivered_correct = 0;  ///< ACKed with all info bits right
  std::size_t harq_exhausted = 0;     ///< typed budget-exhaustion outcomes
  std::size_t frame_errors = 0;  ///< residual: not delivered, or delivered wrong
  std::size_t bit_errors = 0;    ///< residual info-bit errors
  std::size_t total_transmissions = 0;  ///< channel uses across all frames
  std::size_t total_symbols = 0;  ///< symbols on the air (complex, or real
                                  ///< for BPSK) across all transmissions
  std::size_t redundancy_requests = 0;  ///< retransmissions the hook granted
  long long combiner_clips = 0;  ///< LlrBuffer rail saturations

  double mean_transmissions() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(total_transmissions) /
                             static_cast<double>(frames);
  }
  double residual_bler() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(frame_errors) /
                             static_cast<double>(frames);
  }
  /// Delivered-correct information bits per transmitted symbol — the
  /// link-level goodput every HARQ comparison is about. IR wins here by
  /// sending fewer symbols per retransmission, chase by failing less.
  double throughput(std::size_t info_bits) const {
    return total_symbols == 0
               ? 0.0
               : static_cast<double>(delivered_correct * info_bits) /
                     static_cast<double>(total_symbols);
  }
};

class HarqLinkRunner {
 public:
  /// `code` must outlive the runner. `factory` builds the attempt-1 decoder
  /// per worker; retries run on the harq_escalation_ladder (same budget and
  /// format — recovery comes from redundancy, not a wider datapath).
  HarqLinkRunner(const QCLdpcCode& code, DecoderFactory factory,
                 HarqLinkConfig config);

  /// Run the full sweep; one HarqPoint per configured Eb/N0 value.
  std::vector<HarqPoint> run();

  const RateMatcher& rate_matcher() const { return matcher_; }
  /// Info bits per frame after shortening (the throughput() argument).
  std::size_t info_bits() const { return matcher_.info_bits(); }

 private:
  HarqPoint run_point(float ebn0_db, std::size_t point_index);

  const QCLdpcCode& code_;
  DecoderFactory factory_;
  HarqLinkConfig config_;
  RateMatcher matcher_;
  float rail_;  ///< LlrBuffer saturation rail (the format's max LLR)
};

}  // namespace ldpc
