#include "harq/llr_buffer.hpp"

#include "util/check.hpp"

namespace ldpc {

LlrBuffer::LlrBuffer(std::size_t n, float rail)
    : rail_(rail), acc_(n, 0.0), pinned_(n, false) {
  LDPC_CHECK(n >= 1);
  LDPC_CHECK(rail > 0.0F);
}

void LlrBuffer::reset() {
  std::fill(acc_.begin(), acc_.end(), 0.0);
  std::fill(pinned_.begin(), pinned_.end(), false);
  transmissions_ = 0;
  stats_ = SaturationStats{};
}

void LlrBuffer::combine(const std::vector<std::size_t>& positions,
                        const std::vector<float>& llrs) {
  LDPC_CHECK(positions.size() == llrs.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const std::size_t p = positions[i];
    LDPC_CHECK(p < acc_.size());
    if (!pinned_[p]) acc_[p] += static_cast<double>(llrs[i]);
  }
  ++transmissions_;
}

void LlrBuffer::replace(const std::vector<std::size_t>& positions,
                        const std::vector<float>& llrs) {
  LDPC_CHECK(positions.size() == llrs.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const std::size_t p = positions[i];
    LDPC_CHECK(p < acc_.size());
    if (!pinned_[p]) acc_[p] = static_cast<double>(llrs[i]);
  }
  ++transmissions_;
}

void LlrBuffer::pin(const std::vector<std::size_t>& positions, float value) {
  for (const std::size_t p : positions) {
    LDPC_CHECK(p < acc_.size());
    acc_[p] = static_cast<double>(value);
    pinned_[p] = true;
  }
}

std::vector<float> LlrBuffer::emit() {
  std::vector<float> llr(acc_.size());
  const auto hi = static_cast<double>(rail_);
  for (std::size_t i = 0; i < acc_.size(); ++i) {
    double v = acc_[i];
    if (v > hi) {
      v = hi;
      ++stats_.quantizer_clips;
    } else if (v < -hi) {
      v = -hi;
      ++stats_.quantizer_clips;
    }
    llr[i] = static_cast<float>(v);
  }
  return llr;
}

}  // namespace ldpc
