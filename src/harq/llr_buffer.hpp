// Per-frame soft-combining buffer for HARQ.
//
// The receiver keeps one LlrBuffer per in-flight frame and folds every
// (re)transmission into it:
//   * combine() — chase / incremental redundancy: LLRs of independent
//     observations of the same bit ADD (log of a product of likelihood
//     ratios), so retransmitted positions accumulate and newly revealed
//     punctured positions turn from zero-LLR erasures into real evidence;
//   * replace() — type-I plain retry: discard the old observation;
//   * pin() — shortened bits, known a priori (strong fixed LLR).
// Accumulation happens in double so repeated combining cannot overflow or
// lose low-order evidence; saturation to the decoder's input rail happens
// once, at emit(), where clip events are counted into SaturationStats
// (quantizer_clips — the same overload-accounting channel the fixed-point
// decoders use), keeping degraded-operation monitoring end to end.
#pragma once

#include <cstddef>
#include <vector>

#include "core/decoder.hpp"

namespace ldpc {

class LlrBuffer {
 public:
  /// `n` codeword positions, emitted LLRs clamped to [-rail, +rail].
  LlrBuffer(std::size_t n, float rail);

  std::size_t size() const { return acc_.size(); }
  float rail() const { return rail_; }

  /// Transmissions folded in so far (combine + replace calls).
  std::size_t transmissions() const { return transmissions_; }

  /// Clear all evidence (new frame in this buffer slot).
  void reset();

  /// Chase / IR: acc[positions[i]] += llrs[i]. Spans must match.
  void combine(const std::vector<std::size_t>& positions,
               const std::vector<float>& llrs);

  /// Type-I retry: acc[positions[i]] = llrs[i] (old evidence discarded).
  void replace(const std::vector<std::size_t>& positions,
               const std::vector<float>& llrs);

  /// Fix positions to `value` (shortened bits: +rail votes a hard 0).
  /// Pinned positions ignore later combine/replace — a priori knowledge
  /// outranks any channel observation of a bit that was never sent.
  void pin(const std::vector<std::size_t>& positions, float value);

  /// The decoder's view: accumulated LLRs saturated at the rail. Clips are
  /// added to the buffer's SaturationStats.
  std::vector<float> emit();

  /// Rail-saturation accounting accumulated over every emit() since reset.
  const SaturationStats& saturation() const { return stats_; }

 private:
  float rail_;
  std::size_t transmissions_ = 0;
  std::vector<double> acc_;
  std::vector<bool> pinned_;
  SaturationStats stats_;
};

}  // namespace ldpc
