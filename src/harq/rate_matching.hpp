// Rate adaptation for the QC mother codes: deterministic puncturing and
// shortening, plus the incremental-redundancy transmission schedule.
//
// A deployment carries ONE mother code per block size (the paper's table of
// WiMAX/WiFi base matrices) and derives every other rate from it at the
// link layer:
//   * target rate > mother rate — puncture parity bits: the transmitter
//     skips them, the receiver decodes them as zero-LLR erasures. The
//     punctured set is the prefix of a fixed golden-stride permutation of
//     the parity positions, so it is spread evenly over the parity blocks
//     and is identical on both ends without signalling.
//   * target rate < mother rate — shorten information bits: the last s
//     info positions are fixed to zero, never transmitted, and pinned to a
//     strong positive LLR at the receiver.
// The same puncture order doubles as the incremental-redundancy (IR)
// schedule: retransmission t >= 2 reveals the next chunk of punctured
// positions, converting erasures into real channel observations; once the
// punctured set is exhausted the schedule cycles over the initial
// transmission (degenerating into chase combining, which is the correct
// limit for IR with nothing left to reveal).
#pragma once

#include <cstddef>
#include <vector>

#include "codes/qc_code.hpp"

namespace ldpc {

class RateMatcher {
 public:
  /// `target_rate` in (0, 1); 0 keeps the mother rate (no puncturing or
  /// shortening). `ir_chunk_bits` is the number of punctured positions each
  /// IR retransmission reveals (0 = one circulant worth, z bits). The code
  /// must be systematic with info bits in positions [0, k) — true for every
  /// code the RU encoder produces. Throws ldpc::Error when the target rate
  /// would puncture into the last parity block (fewer than z parity bits
  /// left makes the layered schedule degenerate).
  explicit RateMatcher(const QCLdpcCode& code, double target_rate = 0.0,
                       std::size_t ir_chunk_bits = 0);

  /// Codeword positions sent in the initial transmission, ascending:
  /// info [0, k - s) plus the surviving (unpunctured) parity positions.
  const std::vector<std::size_t>& initial_positions() const {
    return initial_;
  }

  /// Punctured parity positions in reveal order (golden-stride permutation
  /// prefix): ir_positions(2) reveals the first chunk of this list.
  const std::vector<std::size_t>& punctured_positions() const {
    return punctured_;
  }

  /// Shortened info positions (the last s info bits), ascending. Fixed to
  /// zero at the transmitter; the receiver pins them to a strong positive
  /// LLR (LlrBuffer::pin) instead of receiving them.
  const std::vector<std::size_t>& shortened_positions() const {
    return shortened_;
  }

  /// Positions transmission `tx` (1-based) puts on the channel. tx 1 is the
  /// initial transmission; tx >= 2 is the IR schedule described above.
  /// Chase combining ignores this and re-sends initial_positions().
  std::vector<std::size_t> ir_positions(std::size_t tx) const;

  /// Information bits actually carried per frame (k minus shortening).
  std::size_t info_bits() const { return info_bits_; }
  /// Bits on the channel in the initial transmission.
  std::size_t transmitted_bits() const { return initial_.size(); }
  /// info_bits / transmitted_bits — the rate the link actually runs at.
  double effective_rate() const {
    return static_cast<double>(info_bits_) /
           static_cast<double>(initial_.size());
  }

  std::size_t num_punctured() const { return punctured_.size(); }
  std::size_t num_shortened() const { return shortened_.size(); }
  std::size_t ir_chunk_bits() const { return ir_chunk_; }

 private:
  std::size_t info_bits_ = 0;
  std::size_t ir_chunk_ = 0;
  std::vector<std::size_t> initial_;
  std::vector<std::size_t> punctured_;
  std::vector<std::size_t> shortened_;
};

}  // namespace ldpc
