// IEEE 802.11n (WiFi) LDPC code tables.
//
// 802.11n defines a separate shift table per (rate, z) pair rather than
// scaling one design matrix; we carry the rate-1/2 tables for z = 27
// (n = 648) and z = 81 (n = 1944 — the length quoted for decoder [2] in the
// paper's Table II). They exercise the decoder's multi-standard flexibility:
// same block-structured machinery, different geometry.
#pragma once

#include "codes/qc_code.hpp"

namespace ldpc {

/// n = 648, rate 1/2, z = 27.
QCLdpcCode make_wifi_648_half_rate();

/// n = 1944, rate 1/2, z = 81.
QCLdpcCode make_wifi_1944_half_rate();

}  // namespace ldpc
