// Tanner-graph structure analysis for QC-LDPC codes.
//
// Decoding performance of min-sum/BP depends on graph properties the code
// tables encode implicitly: short cycles (girth), degree distributions and
// density. These tools quantify them — used by the tests as a regression
// anchor on the standard tables (the 802.16e/802.11n matrices are designed
// to avoid 4-cycles) and by code designers evaluating random constructions.
#pragma once

#include <cstddef>
#include <map>

#include "codes/qc_code.hpp"

namespace ldpc {

/// Number of length-4 cycles at the circulant level: pairs of rows (i, j)
/// and columns (a, b) with p(i,a) - p(j,a) + p(j,b) - p(i,b) == 0 (mod z).
/// Each such base-level event corresponds to z cycles in the expanded graph.
std::size_t count_base_4cycles(const BaseMatrix& base);

/// Exact girth of the expanded Tanner graph (length of the shortest cycle,
/// always even), computed by BFS from every variable node. Returns
/// `max_girth` if no cycle shorter than it is found (practically: the graph
/// has girth >= max_girth). O(n * edges) — fine for n up to a few thousand.
std::size_t tanner_girth(const QCLdpcCode& code, std::size_t max_girth = 12);

/// Degree histogram: degree -> node count.
std::map<std::size_t, std::size_t> variable_degree_histogram(const QCLdpcCode& code);
std::map<std::size_t, std::size_t> check_degree_histogram(const QCLdpcCode& code);

/// Fraction of ones in the expanded H (the "low density" in LDPC).
double density(const QCLdpcCode& code);

}  // namespace ldpc
