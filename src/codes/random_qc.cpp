#include "codes/random_qc.hpp"

#include <algorithm>
#include <array>
#include <optional>
#include <vector>

#include "codes/graph_analysis.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

/// First base-level 4-cycle as (row_i, row_j, col_a, col_b), if any.
std::optional<std::array<std::size_t, 4>> find_4cycle(
    const std::vector<int>& entries, std::size_t mb, std::size_t nb, int z) {
  auto at = [&](std::size_t r, std::size_t c) { return entries[r * nb + c]; };
  for (std::size_t i = 0; i < mb; ++i)
    for (std::size_t j = i + 1; j < mb; ++j)
      for (std::size_t a = 0; a < nb; ++a) {
        if (at(i, a) < 0 || at(j, a) < 0) continue;
        for (std::size_t b = a + 1; b < nb; ++b) {
          if (at(i, b) < 0 || at(j, b) < 0) continue;
          const int delta =
              ((at(i, a) - at(j, a) + at(j, b) - at(i, b)) % z + 2 * z) % z;
          if (delta == 0) return std::array<std::size_t, 4>{i, j, a, b};
        }
      }
  return std::nullopt;
}

}  // namespace

QCLdpcCode make_random_qc_code(const RandomQcConfig& config) {
  const std::size_t mb = config.block_rows;
  const std::size_t nb = config.block_cols;
  const std::size_t kb = nb - mb;
  LDPC_CHECK_MSG(mb >= 3, "need at least 3 layers for the weight-3 column");
  LDPC_CHECK_MSG(nb > mb, "block_cols must exceed block_rows");
  LDPC_CHECK_MSG(config.z >= 2, "z must be at least 2");
  LDPC_CHECK_MSG(config.info_row_degree >= 1 && config.info_row_degree <= kb,
                 "info_row_degree " << config.info_row_degree
                                    << " out of range for " << kb
                                    << " info columns");

  Xoshiro256 rng(config.seed);
  std::vector<int> entries(mb * nb, BaseMatrix::kZero);
  auto at = [&](std::size_t r, std::size_t c) -> int& {
    return entries[r * nb + c];
  };

  // Information part: each layer picks `info_row_degree` distinct columns
  // with random shifts. Ensure every info column is used at least once so
  // no variable node is disconnected from the graph.
  std::vector<std::size_t> col_use(kb, 0);
  for (std::size_t r = 0; r < mb; ++r) {
    std::vector<std::size_t> cols(kb);
    for (std::size_t c = 0; c < kb; ++c) cols[c] = c;
    // Partial Fisher-Yates for a random degree-sized subset.
    for (std::size_t i = 0; i < config.info_row_degree; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.uniform_int(cols.size() - i));
      std::swap(cols[i], cols[j]);
      at(r, cols[i]) = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(config.z)));
      ++col_use[cols[i]];
    }
  }
  for (std::size_t c = 0; c < kb; ++c) {
    if (col_use[c] != 0) continue;
    const auto r = static_cast<std::size_t>(rng.uniform_int(mb));
    at(r, c) = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(config.z)));
  }

  // Encodable parity part: weight-3 first parity column (equal shifts at the
  // first and last layer so the RU trick applies) + shift-0 dual diagonal.
  const int h = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(config.z)));
  const std::size_t mid = mb / 2;
  at(0, kb) = h;
  at(mid, kb) = 0;
  at(mb - 1, kb) = h;
  for (std::size_t j = 1; j < mb; ++j) {
    at(j - 1, kb + j) = 0;
    at(j, kb + j) = 0;
  }

  BaseMatrix base(mb, nb, std::move(entries), config.z,
                  "random-qc-" + std::to_string(nb) + "x" + std::to_string(mb) +
                      "-z" + std::to_string(config.z) + "-s" +
                      std::to_string(config.seed));
  return QCLdpcCode(std::move(base));
}

QCLdpcCode make_girth6_qc_code(const RandomQcConfig& config,
                               std::size_t max_attempts) {
  const QCLdpcCode start = make_random_qc_code(config);
  const std::size_t mb = config.block_rows;
  const std::size_t nb = config.block_cols;
  const std::size_t kb = nb - mb;
  const int z = config.z;

  // Work on a mutable copy of the entry table.
  std::vector<int> entries(mb * nb);
  for (std::size_t r = 0; r < mb; ++r)
    for (std::size_t c = 0; c < nb; ++c) entries[r * nb + c] = start.base().at(r, c);

  Xoshiro256 rng(config.seed ^ 0x61727468ULL);
  auto at = [&](std::size_t r, std::size_t c) -> int& {
    return entries[r * nb + c];
  };

  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    const auto cycle = find_4cycle(entries, mb, nb, z);
    if (!cycle) {
      BaseMatrix base(mb, nb, entries, z,
                      "girth6-qc-" + std::to_string(nb) + "x" +
                          std::to_string(mb) + "-z" + std::to_string(z) + "-s" +
                          std::to_string(config.seed));
      return QCLdpcCode(std::move(base));
    }
    const auto [i, j, a, b] = *cycle;
    // Prefer mutating an information-part shift (keeps the RU skeleton).
    std::size_t col;
    std::size_t row;
    if (a < kb) {
      col = a;
      row = rng.coin() ? i : j;
    } else if (b < kb) {
      col = b;
      row = rng.coin() ? i : j;
    } else {
      // Both columns are parity: only the weight-3 column's shift h is
      // adjustable (rows first and last must stay equal).
      LDPC_CHECK_MSG(a == kb || b == kb,
                     "dual-diagonal-only 4-cycle should be impossible");
      const int h = 1 + static_cast<int>(
                            rng.uniform_int(static_cast<std::uint64_t>(z - 1)));
      at(0, kb) = h;
      at(mb - 1, kb) = h;
      continue;
    }
    at(row, col) = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(z)));
  }
  throw Error("make_girth6_qc_code: could not clear all 4-cycles in " +
              std::to_string(max_attempts) + " mutations (z=" +
              std::to_string(z) + " too small for this density)");
}

}  // namespace ldpc
