#include "codes/alist.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace ldpc {

void write_alist(std::ostream& out, const QCLdpcCode& code) {
  const auto n = code.n();
  const auto m = code.m();
  const auto& var_adj = code.var_adjacency();
  const auto& check_adj = code.check_adjacency();

  std::size_t max_col = 0, max_row = 0;
  for (const auto& a : var_adj) max_col = std::max(max_col, a.size());
  for (const auto& a : check_adj) max_row = std::max(max_row, a.size());

  out << n << ' ' << m << '\n';
  out << max_col << ' ' << max_row << '\n';
  for (std::size_t v = 0; v < n; ++v)
    out << var_adj[v].size() << (v + 1 == n ? '\n' : ' ');
  for (std::size_t c = 0; c < m; ++c)
    out << check_adj[c].size() << (c + 1 == m ? '\n' : ' ');
  // 1-based indices, one node per line (no zero padding — the common
  // "sparse" alist variant; the reader accepts both).
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < var_adj[v].size(); ++i)
      out << (var_adj[v][i] + 1) << (i + 1 == var_adj[v].size() ? '\n' : ' ');
  }
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t i = 0; i < check_adj[c].size(); ++i)
      out << (check_adj[c][i] + 1) << (i + 1 == check_adj[c].size() ? '\n' : ' ');
  }
}

std::string to_alist(const QCLdpcCode& code) {
  std::ostringstream os;
  write_alist(os, code);
  return os.str();
}

QCLdpcCode read_alist(std::istream& in) {
  long tokens = 0;  // whitespace-separated tokens consumed, for error context
  auto fail = [&tokens](const std::string& reason) -> void {
    throw AlistParseError(reason, tokens);
  };
  auto next = [&in, &tokens, &fail]() -> long {
    long v = 0;
    if (!(in >> v))
      fail(in.eof() ? "unexpected end of input" : "token is not an integer");
    ++tokens;
    return v;
  };

  const long n = next();
  const long m = next();
  if (n <= 0 || m <= 0 || n <= m)
    fail("need N > M > 0, got N=" + std::to_string(n) +
         " M=" + std::to_string(m));
  // The importer materializes a dense M x N base matrix; refuse dimensions
  // that would let a 30-byte header exhaust memory.
  constexpr long kMaxDenseEntries = 1L << 26;  // 64M ints = 256 MiB
  if (m > kMaxDenseEntries / n)
    fail("matrix " + std::to_string(m) + " x " + std::to_string(n) +
         " exceeds the dense-import cap of " +
         std::to_string(kMaxDenseEntries) + " entries");
  const long max_col = next();
  const long max_row = next();
  if (max_col <= 0 || max_col > m)
    fail("max column degree " + std::to_string(max_col) +
         " outside [1, M=" + std::to_string(m) + "]");
  if (max_row <= 0 || max_row > n)
    fail("max row degree " + std::to_string(max_row) +
         " outside [1, N=" + std::to_string(n) + "]");

  std::vector<long> col_deg(static_cast<std::size_t>(n));
  std::vector<long> row_deg(static_cast<std::size_t>(m));
  long col_deg_sum = 0, row_deg_sum = 0;
  for (auto& d : col_deg) {
    d = next();
    if (d < 0 || d > max_col)
      fail("column degree " + std::to_string(d) + " outside [0, " +
           std::to_string(max_col) + "]");
    col_deg_sum += d;
  }
  for (auto& d : row_deg) {
    d = next();
    if (d < 0 || d > max_row)
      fail("row degree " + std::to_string(d) + " outside [0, " +
           std::to_string(max_row) + "]");
    row_deg_sum += d;
  }
  if (col_deg_sum != row_deg_sum)
    fail("column degrees sum to " + std::to_string(col_deg_sum) +
         " but row degrees sum to " + std::to_string(row_deg_sum) +
         " — the two adjacency views disagree");

  // Column adjacency (consume; we rebuild H from the row lists and verify
  // the two views agree).
  std::vector<std::vector<long>> col_rows(static_cast<std::size_t>(n));
  for (std::size_t v = 0; v < static_cast<std::size_t>(n); ++v) {
    for (long i = 0; i < col_deg[v]; ++i) {
      const long r = next();
      if (r < 1 || r > m)
        fail("row index " + std::to_string(r) + " of column " +
             std::to_string(v) + " outside [1, M=" + std::to_string(m) + "]");
      for (long seen : col_rows[v])
        if (seen == r - 1)
          fail("duplicate row index " + std::to_string(r) + " in column " +
               std::to_string(v));
      col_rows[v].push_back(r - 1);
    }
    // Tolerate zero padding up to max_col (the "full" alist variant): zeros
    // only appear as padding, which the degree already told us to skip.
    while (static_cast<long>(col_rows[v].size()) < max_col && in.peek() != EOF) {
      const auto pos = in.tellg();
      long maybe;
      if (!(in >> maybe)) break;
      if (maybe == 0) continue;  // padding
      in.seekg(pos);
      break;
    }
  }

  std::vector<int> entries(static_cast<std::size_t>(m) * static_cast<std::size_t>(n),
                           BaseMatrix::kZero);
  for (std::size_t r = 0; r < static_cast<std::size_t>(m); ++r) {
    for (long i = 0; i < row_deg[r]; ++i) {
      const long c = next();
      if (c < 1 || c > n)
        fail("column index " + std::to_string(c) + " of row " +
             std::to_string(r) + " outside [1, N=" + std::to_string(n) + "]");
      auto& cell =
          entries[r * static_cast<std::size_t>(n) + static_cast<std::size_t>(c - 1)];
      if (cell != BaseMatrix::kZero)
        fail("duplicate column index " + std::to_string(c) + " in row " +
             std::to_string(r));
      cell = 0;
    }
    while (in.peek() != EOF) {
      const auto pos = in.tellg();
      long maybe;
      if (!(in >> maybe)) break;
      if (maybe == 0) continue;
      in.seekg(pos);
      break;
    }
  }

  // Cross-validate the column lists against the row lists (same degree sums
  // were already enforced, so one-sided containment implies equality).
  for (std::size_t v = 0; v < static_cast<std::size_t>(n); ++v)
    for (long r : col_rows[v])
      if (entries[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) + v] != 0)
        fail("column list names H(" + std::to_string(r) + "," +
             std::to_string(v) + ") but the row list does not");

  // A complete matrix ends here; anything but whitespace after it means the
  // text was damaged (an appended index, a concatenated file, ...). Trailing
  // zero padding was already consumed above.
  std::string trailing;
  if (in >> trailing)
    fail("trailing content '" + trailing + "' after a complete matrix");

  BaseMatrix base(static_cast<std::size_t>(m), static_cast<std::size_t>(n),
                  std::move(entries), /*design_z=*/1, "alist-import");
  return QCLdpcCode(std::move(base));
}

QCLdpcCode alist_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_alist(is);
}

}  // namespace ldpc
