#include "codes/alist.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace ldpc {

void write_alist(std::ostream& out, const QCLdpcCode& code) {
  const auto n = code.n();
  const auto m = code.m();
  const auto& var_adj = code.var_adjacency();
  const auto& check_adj = code.check_adjacency();

  std::size_t max_col = 0, max_row = 0;
  for (const auto& a : var_adj) max_col = std::max(max_col, a.size());
  for (const auto& a : check_adj) max_row = std::max(max_row, a.size());

  out << n << ' ' << m << '\n';
  out << max_col << ' ' << max_row << '\n';
  for (std::size_t v = 0; v < n; ++v)
    out << var_adj[v].size() << (v + 1 == n ? '\n' : ' ');
  for (std::size_t c = 0; c < m; ++c)
    out << check_adj[c].size() << (c + 1 == m ? '\n' : ' ');
  // 1-based indices, one node per line (no zero padding — the common
  // "sparse" alist variant; the reader accepts both).
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < var_adj[v].size(); ++i)
      out << (var_adj[v][i] + 1) << (i + 1 == var_adj[v].size() ? '\n' : ' ');
  }
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t i = 0; i < check_adj[c].size(); ++i)
      out << (check_adj[c][i] + 1) << (i + 1 == check_adj[c].size() ? '\n' : ' ');
  }
}

std::string to_alist(const QCLdpcCode& code) {
  std::ostringstream os;
  write_alist(os, code);
  return os.str();
}

QCLdpcCode read_alist(std::istream& in) {
  auto next = [&in]() -> long {
    long v;
    if (!(in >> v)) throw Error("alist: unexpected end of input");
    return v;
  };

  const long n = next();
  const long m = next();
  LDPC_CHECK_MSG(n > 0 && m > 0 && n > m,
                 "alist: need N > M > 0, got N=" << n << " M=" << m);
  const long max_col = next();
  const long max_row = next();
  LDPC_CHECK(max_col > 0 && max_row > 0);

  std::vector<long> col_deg(static_cast<std::size_t>(n));
  std::vector<long> row_deg(static_cast<std::size_t>(m));
  for (auto& d : col_deg) {
    d = next();
    LDPC_CHECK_MSG(d >= 0 && d <= max_col, "alist: bad column degree " << d);
  }
  for (auto& d : row_deg) {
    d = next();
    LDPC_CHECK_MSG(d >= 0 && d <= max_row, "alist: bad row degree " << d);
  }

  // Column adjacency (consume; we rebuild H from the row lists and verify
  // the two views agree).
  std::vector<std::vector<long>> col_rows(static_cast<std::size_t>(n));
  for (std::size_t v = 0; v < static_cast<std::size_t>(n); ++v) {
    for (long i = 0; i < col_deg[v]; ++i) {
      const long r = next();
      LDPC_CHECK_MSG(r >= 1 && r <= m, "alist: row index " << r << " out of range");
      col_rows[v].push_back(r - 1);
    }
    // Tolerate zero padding up to max_col (the "full" alist variant): zeros
    // only appear as padding, which the degree already told us to skip.
    while (static_cast<long>(col_rows[v].size()) < max_col && in.peek() != EOF) {
      const auto pos = in.tellg();
      long maybe;
      if (!(in >> maybe)) break;
      if (maybe == 0) continue;  // padding
      in.seekg(pos);
      break;
    }
  }

  std::vector<int> entries(static_cast<std::size_t>(m) * static_cast<std::size_t>(n),
                           BaseMatrix::kZero);
  for (std::size_t r = 0; r < static_cast<std::size_t>(m); ++r) {
    for (long i = 0; i < row_deg[r]; ++i) {
      const long c = next();
      LDPC_CHECK_MSG(c >= 1 && c <= n, "alist: column index " << c << " out of range");
      entries[r * static_cast<std::size_t>(n) + static_cast<std::size_t>(c - 1)] = 0;
    }
    while (in.peek() != EOF) {
      const auto pos = in.tellg();
      long maybe;
      if (!(in >> maybe)) break;
      if (maybe == 0) continue;
      in.seekg(pos);
      break;
    }
  }

  // Cross-validate the column lists against the row lists.
  for (std::size_t v = 0; v < static_cast<std::size_t>(n); ++v)
    for (long r : col_rows[v])
      LDPC_CHECK_MSG(entries[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) + v] == 0,
                     "alist: column list names H(" << r << "," << v
                                                   << ") but row list does not");

  BaseMatrix base(static_cast<std::size_t>(m), static_cast<std::size_t>(n),
                  std::move(entries), /*design_z=*/1, "alist-import");
  return QCLdpcCode(std::move(base));
}

QCLdpcCode alist_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_alist(is);
}

}  // namespace ldpc
