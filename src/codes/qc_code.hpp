// Expanded quasi-cyclic LDPC code: Tanner-graph connectivity plus the layer
// (block-row) structure that the paper's layered decoder and both hardware
// architectures operate on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "codes/base_matrix.hpp"
#include "util/bitvec.hpp"

namespace ldpc {

class QCLdpcCode {
 public:
  /// One non-zero circulant inside a layer, in block-column order — exactly
  /// the order the block-serial schedule of Fig. 4 walks them.
  struct LayerBlock {
    std::uint32_t block_col;  ///< base-matrix column index
    std::uint32_t shift;      ///< circulant shift
    std::uint32_t r_slot;     ///< R-memory slot (global non-zero-block index)
  };

  /// `base` must already be scaled to `z` (base.design_z() == z).
  explicit QCLdpcCode(BaseMatrix base);

  const BaseMatrix& base() const { return base_; }
  int z() const { return base_.design_z(); }
  std::size_t n() const { return base_.cols() * static_cast<std::size_t>(z()); }
  std::size_t m() const { return base_.rows() * static_cast<std::size_t>(z()); }
  std::size_t k() const { return n() - m(); }
  double rate() const { return static_cast<double>(k()) / static_cast<double>(n()); }
  std::size_t num_layers() const { return base_.rows(); }

  /// Layer -> non-zero circulants in block-column order.
  const std::vector<std::vector<LayerBlock>>& layers() const { return layers_; }

  /// Check node m -> variable node indices (ascending within each circulant
  /// walk order: block-column by block-column).
  const std::vector<std::vector<std::uint32_t>>& check_adjacency() const {
    return check_adj_;
  }
  /// Variable node n -> check node indices.
  const std::vector<std::vector<std::uint32_t>>& var_adjacency() const {
    return var_adj_;
  }

  /// Edge bookkeeping for flooding decoders: edges are numbered in
  /// (check, position-within-check) order.
  std::size_t num_edges() const { return num_edges_; }
  std::size_t edge_index(std::size_t check, std::size_t pos) const {
    return check_edge_offset_[check] + pos;
  }
  /// Variable node n -> global edge indices of its incident edges.
  const std::vector<std::vector<std::uint32_t>>& var_edges() const {
    return var_edges_;
  }

  /// True iff H * word^T == 0.
  bool parity_ok(const BitVec& word) const;

  /// Syndrome weight (number of unsatisfied checks).
  std::size_t syndrome_weight(const BitVec& word) const;

 private:
  BaseMatrix base_;
  std::vector<std::vector<LayerBlock>> layers_;
  std::vector<std::vector<std::uint32_t>> check_adj_;
  std::vector<std::vector<std::uint32_t>> var_adj_;
  std::vector<std::size_t> check_edge_offset_;
  std::vector<std::vector<std::uint32_t>> var_edges_;
  std::size_t num_edges_ = 0;
};

}  // namespace ldpc
