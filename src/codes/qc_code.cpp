#include "codes/qc_code.hpp"

namespace ldpc {

QCLdpcCode::QCLdpcCode(BaseMatrix base) : base_(std::move(base)) {
  const auto mb = base_.rows();
  const auto nb = base_.cols();
  const auto zz = static_cast<std::size_t>(z());
  LDPC_CHECK_MSG(mb > 0 && nb > mb, "base matrix must be m x n with n > m");

  // Layer structure with global R-slot numbering.
  layers_.resize(mb);
  std::uint32_t slot = 0;
  for (std::size_t r = 0; r < mb; ++r) {
    for (std::size_t c = 0; c < nb; ++c) {
      if (base_.is_zero_block(r, c)) continue;
      layers_[r].push_back(LayerBlock{static_cast<std::uint32_t>(c),
                                      static_cast<std::uint32_t>(base_.at(r, c)),
                                      slot++});
    }
  }

  // Expanded Tanner connectivity. Row `row` of circulant with shift s in
  // block (r, c) connects check r*z+row to variable c*z + (row + s) % z.
  check_adj_.resize(mb * zz);
  var_adj_.resize(nb * zz);
  for (std::size_t r = 0; r < mb; ++r) {
    for (const LayerBlock& blk : layers_[r]) {
      for (std::size_t row = 0; row < zz; ++row) {
        const std::uint32_t check = static_cast<std::uint32_t>(r * zz + row);
        const std::uint32_t var = static_cast<std::uint32_t>(
            blk.block_col * zz + (row + blk.shift) % zz);
        check_adj_[check].push_back(var);
        var_adj_[var].push_back(check);
      }
    }
  }

  // Edge numbering: (check, position) order.
  check_edge_offset_.resize(check_adj_.size() + 1, 0);
  for (std::size_t c = 0; c < check_adj_.size(); ++c)
    check_edge_offset_[c + 1] = check_edge_offset_[c] + check_adj_[c].size();
  num_edges_ = check_edge_offset_.back();

  var_edges_.resize(var_adj_.size());
  for (std::size_t c = 0; c < check_adj_.size(); ++c)
    for (std::size_t pos = 0; pos < check_adj_[c].size(); ++pos)
      var_edges_[check_adj_[c][pos]].push_back(
          static_cast<std::uint32_t>(check_edge_offset_[c] + pos));
}

bool QCLdpcCode::parity_ok(const BitVec& word) const {
  LDPC_CHECK(word.size() == n());
  for (const auto& vars : check_adj_) {
    bool parity = false;
    for (std::uint32_t v : vars) parity ^= word.get(v);
    if (parity) return false;
  }
  return true;
}

std::size_t QCLdpcCode::syndrome_weight(const BitVec& word) const {
  LDPC_CHECK(word.size() == n());
  std::size_t weight = 0;
  for (const auto& vars : check_adj_) {
    bool parity = false;
    for (std::uint32_t v : vars) parity ^= word.get(v);
    if (parity) ++weight;
  }
  return weight;
}

}  // namespace ldpc
