#include "codes/wimax.hpp"

#include <array>

namespace ldpc {
namespace {

// Shift tables follow IEEE 802.16e-2005 §8.4.9.2.5 (designed for z0 = 96).
// -1 marks the z x z zero block. Parity parts are dual-diagonal with one
// weight-3 column, which the RU-style encoder in codes/encoder.cpp exploits.

constexpr int kZ0 = 96;

const BaseMatrix& rate_1_2() {
  static const BaseMatrix b(12, 24,
      {
          -1, 94, 73, -1, -1, -1, -1, -1, 55, 83, -1, -1,  7,  0, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
          -1, 27, -1, -1, -1, 22, 79,  9, -1, -1, -1, 12, -1,  0,  0, -1, -1, -1, -1, -1, -1, -1, -1, -1,
          -1, -1, -1, 24, 22, 81, -1, 33, -1, -1, -1,  0, -1, -1,  0,  0, -1, -1, -1, -1, -1, -1, -1, -1,
          61, -1, 47, -1, -1, -1, -1, -1, 65, 25, -1, -1, -1, -1, -1,  0,  0, -1, -1, -1, -1, -1, -1, -1,
          -1, -1, 39, -1, -1, -1, 84, -1, -1, 41, 72, -1, -1, -1, -1, -1,  0,  0, -1, -1, -1, -1, -1, -1,
          -1, -1, -1, -1, 46, 40, -1, 82, -1, -1, -1, 79,  0, -1, -1, -1, -1,  0,  0, -1, -1, -1, -1, -1,
          -1, -1, 95, 53, -1, -1, -1, -1, -1, 14, 18, -1, -1, -1, -1, -1, -1, -1,  0,  0, -1, -1, -1, -1,
          -1, 11, 73, -1, -1, -1,  2, -1, -1, 47, -1, -1, -1, -1, -1, -1, -1, -1, -1,  0,  0, -1, -1, -1,
          12, -1, -1, -1, 83, 24, -1, 43, -1, -1, -1, 51, -1, -1, -1, -1, -1, -1, -1, -1,  0,  0, -1, -1,
          -1, -1, -1, -1, -1, 94, -1, 59, -1, -1, 70, 72, -1, -1, -1, -1, -1, -1, -1, -1, -1,  0,  0, -1,
          -1, -1,  7, 65, -1, -1, -1, -1, 39, 49, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  0,  0,
          43, -1, -1, -1, -1, 66, -1, 41, -1, -1, -1, 26,  7, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  0,
      },
      kZ0, "wimax-1/2");
  return b;
}

const BaseMatrix& rate_2_3a() {
  static const BaseMatrix b(8, 24,
      {
           3,  0, -1, -1,  2,  0, -1,  3,  7, -1,  1,  1, -1, -1, -1, -1,  1,  0, -1, -1, -1, -1, -1, -1,
          -1, -1,  1, -1, 36, -1, -1, 34, 10, -1, -1, 18,  2, -1,  3,  0, -1,  0,  0, -1, -1, -1, -1, -1,
          -1, -1, 12,  2, -1, 15, -1, 40, -1,  3, -1, 15, -1,  2, 13, -1, -1, -1,  0,  0, -1, -1, -1, -1,
          -1, -1, 19, 24, -1,  3,  0, -1,  6, -1, 17, -1, -1, -1,  8, 39, -1, -1, -1,  0,  0, -1, -1, -1,
          20, -1,  6, -1, -1, 10, 29, -1, -1, 28, -1, 14, -1, 38, -1, -1,  0, -1, -1, -1,  0,  0, -1, -1,
          -1, -1, 10, -1, 28, 20, -1, -1,  8, -1, 36, -1,  9, -1, 21, 45, -1, -1, -1, -1, -1,  0,  0, -1,
          35, 25, -1, 37, -1, 21, -1, -1,  5, -1, -1,  0, -1,  4, 20, -1, -1, -1, -1, -1, -1, -1,  0,  0,
          -1,  6,  6, -1, -1, -1,  4, -1, 14, 30, -1,  3, 36, -1, 14, -1,  1, -1, -1, -1, -1, -1, -1,  0,
      },
      kZ0, "wimax-2/3A");
  return b;
}

const BaseMatrix& rate_2_3b() {
  static const BaseMatrix b(8, 24,
      {
           2, -1, 19, -1, 47, -1, 48, -1, 36, -1, 82, -1, 47, -1, 15, -1, 95,  0, -1, -1, -1, -1, -1, -1,
          -1, 69, -1, 88, -1, 33, -1,  3, -1, 16, -1, 37, -1, 40, -1, 48, -1,  0,  0, -1, -1, -1, -1, -1,
          10, -1, 86, -1, 62, -1, 28, -1, 85, -1, 16, -1, 34, -1, 73, -1, -1, -1,  0,  0, -1, -1, -1, -1,
          -1, 28, -1, 32, -1, 81, -1, 27, -1, 88, -1,  5, -1, 56, -1, 37, -1, -1, -1,  0,  0, -1, -1, -1,
          23, -1, 29, -1, 15, -1, 30, -1, 66, -1, 24, -1, 50, -1, 62, -1, -1, -1, -1, -1,  0,  0, -1, -1,
          -1, 30, -1, 65, -1, 54, -1, 14, -1,  0, -1, 30, -1, 74, -1,  0, -1, -1, -1, -1, -1,  0,  0, -1,
          32, -1,  0, -1, 15, -1, 56, -1, 85, -1,  5, -1,  6, -1, 52, -1,  0, -1, -1, -1, -1, -1,  0,  0,
          -1,  0, -1, 47, -1, 13, -1, 61, -1, 84, -1, 55, -1, 78, -1, 41, 95, -1, -1, -1, -1, -1, -1,  0,
      },
      kZ0, "wimax-2/3B");
  return b;
}

const BaseMatrix& rate_3_4a() {
  static const BaseMatrix b(6, 24,
      {
           6, 38,  3, 93, -1, -1, -1, 30, 70, -1, 86, -1, 37, 38,  4, 11, -1, 46, 48,  0, -1, -1, -1, -1,
          62, 94, 19, 84, -1, 92, 78, -1, 15, -1, -1, 92, -1, 45, 24, 32, 30, -1, -1,  0,  0, -1, -1, -1,
          71, -1, 55, -1, 12, 66, 45, 79, -1, 78, -1, -1, 10, -1, 22, 55, 70, 82, -1, -1,  0,  0, -1, -1,
          38, 61, -1, 66,  9, 73, 47, 64, -1, 39, 61, 43, -1, -1, -1, -1, 95, 32,  0, -1, -1,  0,  0, -1,
          -1, -1, -1, -1, 32, 52, 55, 80, 95, 22,  6, 51, 24, 90, 44, 20, -1, -1, -1, -1, -1, -1,  0,  0,
          -1, 63, 31, 88, 20, -1, -1, -1,  6, 40, 56, 16, 71, 53, -1, -1, 27, 26, 48, -1, -1, -1, -1,  0,
      },
      kZ0, "wimax-3/4A");
  return b;
}

const BaseMatrix& rate_3_4b() {
  static const BaseMatrix b(6, 24,
      {
          -1, 81, -1, 28, -1, -1, 14, 25, 17, -1, -1, 85, 29, 52, 78, 95, 22, 92,  0,  0, -1, -1, -1, -1,
          42, -1, 14, 68, 32, -1, -1, -1, -1, 70, 43, 11, 36, 40, 33, 57, 38, 24, -1,  0,  0, -1, -1, -1,
          -1, -1, 20, -1, -1, 63, 39, -1, 70, 67, -1, 38,  4, 72, 47, 29, 60,  5, 80, -1,  0,  0, -1, -1,
          64,  2, -1, -1, 63, -1, -1,  3, 51, -1, 81, 15, 94,  9, 85, 36, 14, 19, -1, -1, -1,  0,  0, -1,
          -1, 53, 60, 80, -1, 26, 75, -1, -1, -1, -1, 86, 77,  1,  3, 72, 60, 25, -1, -1, -1, -1,  0,  0,
          77, -1, -1, -1, 15, 28, -1, 35, -1, 72, 30, 68, 85, 84, 26, 64, 11, 89,  0, -1, -1, -1, -1,  0,
      },
      kZ0, "wimax-3/4B");
  return b;
}

const BaseMatrix& rate_5_6() {
  static const BaseMatrix b(4, 24,
      {
           1, 25, 55, -1, 47,  4, -1, 91, 84,  8, 86, 52, 82, 33,  5,  0, 36, 20,  4, 77, 80,  0, -1, -1,
          -1,  6, -1, 36, 40, 47, 12, 79, 47, -1, 41, 21, 12, 71, 14, 72,  0, 44, 49,  0,  0,  0,  0, -1,
          51, 81, 83,  4, 67, -1, 21, -1, 31, 24, 91, 61, 81,  9, 86, 78, 60, 88, 67, 15, -1, -1,  0,  0,
          50, -1, 50, 15, -1, 36, 13, 10, 11, 20, 53, 90, 29, 92, 57, 30, 84, 92, 11, 66, 80, -1, -1,  0,
      },
      kZ0, "wimax-5/6");
  return b;
}

}  // namespace

const std::vector<WimaxRate>& all_wimax_rates() {
  static const std::vector<WimaxRate> rates = {
      WimaxRate::kRate1_2,  WimaxRate::kRate2_3A, WimaxRate::kRate2_3B,
      WimaxRate::kRate3_4A, WimaxRate::kRate3_4B, WimaxRate::kRate5_6,
  };
  return rates;
}

std::string wimax_rate_name(WimaxRate rate) {
  return wimax_base_matrix(rate).name();
}

const BaseMatrix& wimax_base_matrix(WimaxRate rate) {
  switch (rate) {
    case WimaxRate::kRate1_2:  return rate_1_2();
    case WimaxRate::kRate2_3A: return rate_2_3a();
    case WimaxRate::kRate2_3B: return rate_2_3b();
    case WimaxRate::kRate3_4A: return rate_3_4a();
    case WimaxRate::kRate3_4B: return rate_3_4b();
    case WimaxRate::kRate5_6:  return rate_5_6();
  }
  throw Error("unknown WiMAX rate family");
}

bool wimax_uses_mod_scaling(WimaxRate rate) {
  return rate == WimaxRate::kRate2_3A;
}

const std::vector<int>& wimax_z_values() {
  static const std::vector<int> zs = [] {
    std::vector<int> v;
    for (int z = 24; z <= 96; z += 4) v.push_back(z);
    return v;
  }();
  return zs;
}

QCLdpcCode make_wimax_code(WimaxRate rate, int z) {
  bool valid_z = false;
  for (int zz : wimax_z_values()) valid_z = valid_z || (zz == z);
  LDPC_CHECK_MSG(valid_z, "invalid WiMAX expansion factor z=" << z);
  const BaseMatrix& design = wimax_base_matrix(rate);
  if (z == design.design_z()) return QCLdpcCode(design);
  return QCLdpcCode(design.scaled_to(z, wimax_uses_mod_scaling(rate)));
}

QCLdpcCode make_wimax_2304_half_rate() {
  return make_wimax_code(WimaxRate::kRate1_2, 96);
}

std::size_t wimax_max_r_slots() {
  std::size_t slots = 0;
  for (WimaxRate rate : all_wimax_rates())
    slots = std::max(slots, wimax_base_matrix(rate).nonzero_blocks());
  return slots;
}

}  // namespace ldpc
