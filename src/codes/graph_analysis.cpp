#include "codes/graph_analysis.hpp"

#include <algorithm>
#include <queue>
#include <vector>

namespace ldpc {

std::size_t count_base_4cycles(const BaseMatrix& base) {
  const int z = base.design_z();
  std::size_t count = 0;
  for (std::size_t i = 0; i < base.rows(); ++i) {
    for (std::size_t j = i + 1; j < base.rows(); ++j) {
      for (std::size_t a = 0; a < base.cols(); ++a) {
        if (base.is_zero_block(i, a) || base.is_zero_block(j, a)) continue;
        for (std::size_t b = a + 1; b < base.cols(); ++b) {
          if (base.is_zero_block(i, b) || base.is_zero_block(j, b)) continue;
          const int delta = ((base.at(i, a) - base.at(j, a) + base.at(j, b) -
                              base.at(i, b)) %
                                 z +
                             2 * z) %
                            z;
          if (delta == 0) ++count;
        }
      }
    }
  }
  return count;
}

namespace {

/// Shortest cycle through `start` in the bipartite Tanner graph, found by a
/// BFS that tracks the edge used to reach each node: revisiting a visited
/// node through a different edge closes a cycle of length depth(u)+depth(v)+1
/// ... on a bipartite graph we count in half-edges and return bit lengths.
std::size_t shortest_cycle_through(const QCLdpcCode& code, std::uint32_t start,
                                   std::size_t cap) {
  // Nodes: variables [0, n), checks [n, n+m).
  const auto n = code.n();
  const auto total = n + code.m();
  std::vector<std::uint32_t> dist(total, UINT32_MAX);
  std::vector<std::uint32_t> parent(total, UINT32_MAX);
  std::queue<std::uint32_t> queue;
  dist[start] = 0;
  parent[start] = start;
  queue.push(start);
  std::size_t best = cap;

  auto neighbors = [&](std::uint32_t u) -> const std::vector<std::uint32_t>& {
    return u < n ? code.var_adjacency()[u]
                 : code.check_adjacency()[u - n];
  };

  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop();
    // Cheapest cycle still reachable via u closes to the previous BFS level:
    // dist[u] + (dist[u] - 1) + 1 = 2 dist[u].
    if (2ULL * dist[u] >= best) continue;
    for (std::uint32_t raw : neighbors(u)) {
      const std::uint32_t v = u < n ? raw + static_cast<std::uint32_t>(n) : raw;
      if (v == parent[u]) continue;  // don't traverse the arrival edge back
      if (dist[v] == UINT32_MAX) {
        dist[v] = dist[u] + 1;
        parent[v] = u;
        queue.push(v);
      } else {
        // Cycle through start of length dist[u] + dist[v] + 1 edges; only
        // genuine when the two paths are disjoint, which BFS from a single
        // source guarantees produces at least one cycle of that length
        // through `start` when dist values are minimal.
        best = std::min<std::size_t>(best, dist[u] + dist[v] + 1);
      }
    }
  }
  return best;
}

}  // namespace

std::size_t tanner_girth(const QCLdpcCode& code, std::size_t max_girth) {
  // Girth of a QC code is invariant under the circulant automorphism, so it
  // suffices to BFS from one variable node per block column.
  const auto z = static_cast<std::size_t>(code.z());
  std::size_t best = max_girth;
  for (std::size_t c = 0; c < code.base().cols(); ++c) {
    const auto cycle =
        shortest_cycle_through(code, static_cast<std::uint32_t>(c * z), best);
    best = std::min(best, cycle);
    if (best == 4) break;  // bipartite minimum
  }
  // Bipartite graphs only have even cycles; round up odd artifacts (a
  // cycle count in edges is already even by construction here).
  return best;
}

std::map<std::size_t, std::size_t> variable_degree_histogram(const QCLdpcCode& code) {
  std::map<std::size_t, std::size_t> hist;
  for (const auto& adj : code.var_adjacency()) ++hist[adj.size()];
  return hist;
}

std::map<std::size_t, std::size_t> check_degree_histogram(const QCLdpcCode& code) {
  std::map<std::size_t, std::size_t> hist;
  for (const auto& adj : code.check_adjacency()) ++hist[adj.size()];
  return hist;
}

double density(const QCLdpcCode& code) {
  return static_cast<double>(code.num_edges()) /
         (static_cast<double>(code.n()) * static_cast<double>(code.m()));
}

}  // namespace ldpc
