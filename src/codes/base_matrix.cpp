#include "codes/base_matrix.hpp"

#include <algorithm>

namespace ldpc {

BaseMatrix::BaseMatrix(std::size_t rows, std::size_t cols,
                       std::vector<int> entries, int design_z, std::string name)
    : rows_(rows),
      cols_(cols),
      entries_(std::move(entries)),
      design_z_(design_z),
      name_(std::move(name)) {
  LDPC_CHECK_MSG(entries_.size() == rows_ * cols_,
                 "base matrix " << name_ << ": expected " << rows_ * cols_
                                << " entries, got " << entries_.size());
  LDPC_CHECK(design_z_ > 0);
  for (int e : entries_)
    LDPC_CHECK_MSG(e >= kZero && e < design_z_,
                   "base matrix " << name_ << ": shift " << e
                                  << " out of range for z=" << design_z_);
}

std::size_t BaseMatrix::row_degree(std::size_t r) const {
  LDPC_CHECK(r < rows_);
  std::size_t deg = 0;
  for (std::size_t c = 0; c < cols_; ++c)
    if (!is_zero_block(r, c)) ++deg;
  return deg;
}

std::size_t BaseMatrix::col_degree(std::size_t c) const {
  LDPC_CHECK(c < cols_);
  std::size_t deg = 0;
  for (std::size_t r = 0; r < rows_; ++r)
    if (!is_zero_block(r, c)) ++deg;
  return deg;
}

std::size_t BaseMatrix::nonzero_blocks() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(), [](int e) { return e >= 0; }));
}

std::size_t BaseMatrix::max_row_degree() const {
  std::size_t m = 0;
  for (std::size_t r = 0; r < rows_; ++r) m = std::max(m, row_degree(r));
  return m;
}

std::vector<std::size_t> BaseMatrix::row_support(std::size_t r) const {
  std::vector<std::size_t> cols;
  for (std::size_t c = 0; c < cols_; ++c)
    if (!is_zero_block(r, c)) cols.push_back(c);
  return cols;
}

BaseMatrix BaseMatrix::scaled_to(int z, bool scale_mod) const {
  LDPC_CHECK_MSG(z > 0 && z <= design_z_,
                 "cannot scale " << name_ << " designed for z=" << design_z_
                                 << " up to z=" << z);
  std::vector<int> scaled(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const int e = entries_[i];
    if (e < 0) {
      scaled[i] = kZero;
    } else if (scale_mod) {
      scaled[i] = e % z;
    } else {
      scaled[i] = static_cast<int>(static_cast<long>(e) * z / design_z_);
    }
  }
  return BaseMatrix(rows_, cols_, std::move(scaled), z,
                    name_ + "/z" + std::to_string(z));
}

BaseMatrix BaseMatrix::permuted_rows(
    const std::vector<std::size_t>& permutation) const {
  LDPC_CHECK_MSG(permutation.size() == rows_,
                 "permutation has " << permutation.size() << " entries for "
                                    << rows_ << " rows");
  std::vector<bool> seen(rows_, false);
  for (std::size_t p : permutation) {
    LDPC_CHECK_MSG(p < rows_ && !seen[p],
                   "row permutation entry " << p << " invalid or repeated");
    seen[p] = true;
  }
  std::vector<int> entries(entries_.size());
  for (std::size_t r = 0; r < rows_; ++r)
    std::copy(entries_.begin() +
                  static_cast<std::ptrdiff_t>(permutation[r] * cols_),
              entries_.begin() +
                  static_cast<std::ptrdiff_t>((permutation[r] + 1) * cols_),
              entries.begin() + static_cast<std::ptrdiff_t>(r * cols_));
  return BaseMatrix(rows_, cols_, std::move(entries), design_z_,
                    name_ + "/reordered");
}

}  // namespace ldpc
