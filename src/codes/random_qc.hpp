// Synthetic block-structured LDPC code generator.
//
// The paper's flexibility argument is that the same architecture serves any
// block-structured code. To exercise geometries beyond the standardized
// tables (odd layer counts, extreme rates, very small/large z) the test and
// benchmark suites generate random codes with the same encodable skeleton:
// a random information part plus the 802.16e-style dual-diagonal parity part
// with one weight-3 column, so RuEncoder works on them unchanged.
#pragma once

#include <cstdint>

#include "codes/qc_code.hpp"

namespace ldpc {

struct RandomQcConfig {
  std::size_t block_rows = 4;       ///< mb (layers)
  std::size_t block_cols = 12;      ///< nb
  int z = 16;                       ///< expansion factor
  std::size_t info_row_degree = 4;  ///< non-zero info blocks per layer
  std::uint64_t seed = 1;
};

/// Build a random encodable QC-LDPC code. Throws ldpc::Error on impossible
/// configurations (e.g. info_row_degree exceeding the info width).
QCLdpcCode make_random_qc_code(const RandomQcConfig& config);

/// Build a random encodable QC-LDPC code with girth >= 6: starts from
/// make_random_qc_code and hill-climbs, re-randomizing one information-part
/// shift involved in a base-level 4-cycle until none remain. The parity
/// skeleton is never touched, so RuEncoder keeps working. Throws
/// ldpc::Error when `max_attempts` mutations cannot clear the cycles (the
/// configuration is too dense for the chosen z).
QCLdpcCode make_girth6_qc_code(const RandomQcConfig& config,
                               std::size_t max_attempts = 20000);

}  // namespace ldpc
