// alist import/export — the de-facto interchange format for LDPC parity
// check matrices (MacKay's format, used by aff3ct, GNU Radio, Matlab).
//
// Export lets codes built here (standard tables, random QC constructions)
// be decoded by other toolchains; import lets externally designed matrices
// run on this library's decoders. Imported general matrices are dense-
// encodable only (no QC layer structure is recoverable from alist), so the
// importer reconstructs an un-expanded BaseMatrix with z = 1 — every block
// is 1x1, layers are single check rows, and all decoders work unchanged.
#pragma once

#include <iosfwd>
#include <string>

#include "codes/qc_code.hpp"

namespace ldpc {

/// Serialize the expanded H of `code` in alist format.
void write_alist(std::ostream& out, const QCLdpcCode& code);
std::string to_alist(const QCLdpcCode& code);

/// Parse an alist matrix into a z = 1 QCLdpcCode. Throws ldpc::Error on
/// malformed input (inconsistent dimensions, out-of-range indices,
/// mismatched adjacency lists).
QCLdpcCode read_alist(std::istream& in);
QCLdpcCode alist_from_string(const std::string& text);

}  // namespace ldpc
