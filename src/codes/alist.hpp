// alist import/export — the de-facto interchange format for LDPC parity
// check matrices (MacKay's format, used by aff3ct, GNU Radio, Matlab).
//
// Export lets codes built here (standard tables, random QC constructions)
// be decoded by other toolchains; import lets externally designed matrices
// run on this library's decoders. Imported general matrices are dense-
// encodable only (no QC layer structure is recoverable from alist), so the
// importer reconstructs an un-expanded BaseMatrix with z = 1 — every block
// is 1x1, layers are single check rows, and all decoders work unchanged.
#pragma once

#include <iosfwd>
#include <string>

#include "codes/qc_code.hpp"
#include "util/check.hpp"

namespace ldpc {

/// Recoverable parse failure for malformed alist input. Carries the 0-based
/// index of the offending whitespace-separated token (or the token count at
/// truncation) so tooling can point at the defect; what() embeds both.
class AlistParseError : public Error {
 public:
  AlistParseError(const std::string& reason, long token_index)
      : Error("alist parse error at token " + std::to_string(token_index) +
              ": " + reason),
        reason_(reason),
        token_index_(token_index) {}

  const std::string& reason() const { return reason_; }
  long token_index() const { return token_index_; }

 private:
  std::string reason_;
  long token_index_;
};

/// Serialize the expanded H of `code` in alist format.
void write_alist(std::ostream& out, const QCLdpcCode& code);
std::string to_alist(const QCLdpcCode& code);

/// Parse an alist matrix into a z = 1 QCLdpcCode. Throws AlistParseError on
/// malformed input — negative or inconsistent dimensions, degrees exceeding
/// the declared maxima, out-of-range or duplicate indices, truncated
/// streams, adjacency lists that disagree between the row and column views,
/// and dimensions large enough to exhaust memory (the importer materializes
/// a dense M x N base matrix). The stream may be left partially consumed on
/// failure; the error is recoverable in the sense that the process state is
/// untouched and the caller can report and continue.
QCLdpcCode read_alist(std::istream& in);
QCLdpcCode alist_from_string(const std::string& text);

}  // namespace ldpc
