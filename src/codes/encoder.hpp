// Systematic encoders for QC-LDPC codes.
//
// Two implementations with identical contracts (tests verify they agree):
//
//  * RuEncoder    — O(#edges) Richardson-Urbanke style encoder exploiting the
//                   dual-diagonal + weight-3-column parity structure shared
//                   by the 802.16e and 802.11n base matrices.
//  * DenseEncoder — generic GF(2) encoder: inverts the parity part of H once
//                   (dense, word-packed Gaussian elimination) and solves
//                   H_p p = H_u u per codeword. Works for any full-rank
//                   parity part; used as the reference implementation.
//
// Both produce systematic codewords: x = [info (k bits) | parity (m bits)].
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "codes/qc_code.hpp"
#include "util/bitvec.hpp"

namespace ldpc {

class Encoder {
 public:
  virtual ~Encoder() = default;

  /// Encode k information bits into an n-bit systematic codeword.
  virtual BitVec encode(const BitVec& info) const = 0;

  virtual std::size_t k() const = 0;
  virtual std::size_t n() const = 0;
};

/// Fast structured encoder. Construction throws ldpc::Error if the code's
/// parity part is not dual-diagonal with a single weight-3 column.
class RuEncoder final : public Encoder {
 public:
  explicit RuEncoder(const QCLdpcCode& code);

  BitVec encode(const BitVec& info) const override;
  std::size_t k() const override;
  std::size_t n() const override;

 private:
  /// Block rows of the weight-3 column and their shifts.
  struct Weight3Column {
    std::size_t first_row, mid_row, last_row;
    int first_shift, mid_shift, last_shift;
    /// Shift h such that rotate(p0, h) == sum of all layer syndromes.
    int odd_shift;
  };

  const QCLdpcCode& code_;  // non-owning; caller keeps the code alive
  Weight3Column w3_;
};

/// Generic dense encoder (reference implementation).
class DenseEncoder final : public Encoder {
 public:
  /// Throws ldpc::Error if the parity part of H is singular over GF(2).
  explicit DenseEncoder(const QCLdpcCode& code);

  BitVec encode(const BitVec& info) const override;
  std::size_t k() const override;
  std::size_t n() const override;

 private:
  std::size_t k_ = 0;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t words_per_row_ = 0;
  /// Row-major packed inverse of the parity part of H (m x m bits).
  std::vector<std::uint64_t> hp_inverse_;
  /// Check adjacency restricted to information columns.
  std::vector<std::vector<std::uint32_t>> info_adj_;
};

}  // namespace ldpc
