// Block-structured (quasi-cyclic) LDPC prototype matrices.
//
// A base matrix B is an mb x nb array of circulant descriptors: entry -1
// denotes the z x z zero block and entry s >= 0 denotes the identity matrix
// cyclically right-shifted by s columns (the convention used by IEEE
// 802.16e / 802.11n: row r of the block connects to column (r + s) mod z).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace ldpc {

class BaseMatrix {
 public:
  static constexpr int kZero = -1;

  BaseMatrix() = default;

  /// Construct from a row-major table of shift coefficients.
  /// `design_z` is the expansion factor the shifts were designed for
  /// (96 for 802.16e; equal to the actual z for 802.11n tables).
  BaseMatrix(std::size_t rows, std::size_t cols, std::vector<int> entries,
             int design_z, std::string name);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  int design_z() const { return design_z_; }
  const std::string& name() const { return name_; }

  int at(std::size_t r, std::size_t c) const {
    LDPC_CHECK(r < rows_ && c < cols_);
    return entries_[r * cols_ + c];
  }

  bool is_zero_block(std::size_t r, std::size_t c) const { return at(r, c) < 0; }

  /// Number of non-zero circulant blocks in row r (the layer's block degree).
  std::size_t row_degree(std::size_t r) const;
  /// Number of non-zero circulant blocks in column c.
  std::size_t col_degree(std::size_t c) const;
  /// Total non-zero circulant blocks (the number of R-memory slots the
  /// paper's architecture provisions per code).
  std::size_t nonzero_blocks() const;
  /// Maximum row degree over all rows (sizes the Q FIFO in Fig. 7).
  std::size_t max_row_degree() const;

  /// Column indices of the non-zero blocks in row r, ascending.
  std::vector<std::size_t> row_support(std::size_t r) const;

  /// Rescale the shift coefficients from design_z to target z.
  /// `scale_mod` selects the 802.16e rate-2/3A rule (s mod z); otherwise the
  /// standard floor rule (s * z / design_z) is applied. Zero blocks and the
  /// structural 0-shifts are preserved by both rules.
  BaseMatrix scaled_to(int z, bool scale_mod) const;

  /// Reorder the block rows: row i of the result is row `permutation[i]` of
  /// this matrix. Permuting rows of H leaves the code unchanged but fixes
  /// the layer processing order of the layered schedules — the knob the
  /// static hazard analyzer optimizes (analysis/layer_reorder.hpp).
  /// `permutation` must be a permutation of 0..rows()-1.
  BaseMatrix permuted_rows(const std::vector<std::size_t>& permutation) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<int> entries_;
  int design_z_ = 0;
  std::string name_;
};

}  // namespace ldpc
