#include "codes/registry.hpp"

#include <map>
#include <memory>
#include <sstream>

#include "codes/alist.hpp"
#include "codes/random_qc.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace ldpc {
namespace {

/// Dense (z = 1) variant of make_random_qc_code: same encodable skeleton —
/// dual-diagonal parity part, weight-3 first parity column, fixed-degree
/// information rows — but every entry is a plain 1, so the result imports
/// and round-trips through the alist path exactly. make_random_qc_code
/// itself requires z >= 2 (its shifts are meaningless at z = 1).
QCLdpcCode make_dense_code(const RandomQcConfig& config) {
  const std::size_t mb = config.block_rows;
  const std::size_t nb = config.block_cols;
  const std::size_t kb = nb - mb;
  LDPC_CHECK_MSG(mb >= 3, "need at least 3 rows for the weight-3 column");
  LDPC_CHECK_MSG(nb > mb, "block_cols must exceed block_rows");
  LDPC_CHECK_MSG(config.info_row_degree >= 1 && config.info_row_degree <= kb,
                 "info_row_degree " << config.info_row_degree
                                    << " out of range for " << kb
                                    << " info columns");

  Xoshiro256 rng(config.seed);
  std::vector<int> entries(mb * nb, BaseMatrix::kZero);
  auto at = [&](std::size_t r, std::size_t c) -> int& {
    return entries[r * nb + c];
  };

  // Information part: each row connects `info_row_degree` distinct columns;
  // every column is touched at least once so no variable is disconnected.
  std::vector<std::size_t> col_use(kb, 0);
  for (std::size_t r = 0; r < mb; ++r) {
    std::vector<std::size_t> cols(kb);
    for (std::size_t c = 0; c < kb; ++c) cols[c] = c;
    for (std::size_t i = 0; i < config.info_row_degree; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.uniform_int(cols.size() - i));
      std::swap(cols[i], cols[j]);
      at(r, cols[i]) = 0;
      ++col_use[cols[i]];
    }
  }
  for (std::size_t c = 0; c < kb; ++c) {
    if (col_use[c] != 0) continue;
    at(static_cast<std::size_t>(rng.uniform_int(mb)), c) = 0;
  }

  // Encodable parity part: weight-3 first parity column + dual diagonal.
  at(0, kb) = 0;
  at(mb / 2, kb) = 0;
  at(mb - 1, kb) = 0;
  for (std::size_t j = 1; j < mb; ++j) {
    at(j - 1, kb + j) = 0;
    at(j, kb + j) = 0;
  }

  BaseMatrix base(mb, nb, std::move(entries), /*design_z=*/1,
                  "dense-" + std::to_string(nb) + "x" + std::to_string(mb) +
                      "-s" + std::to_string(config.seed));
  return QCLdpcCode(std::move(base));
}

/// Deterministic construction recipe for one registry entry. Every entry is
/// an encodable random-QC build at z = 1 (a dense parity-check matrix with
/// the 802.16e-style dual-diagonal parity skeleton, so both encoders work),
/// matched in geometry to the external code it stands in for.
struct Recipe {
  const char* name;
  const char* description;
  RandomQcConfig config;
};

const Recipe kRecipes[] = {
    // ft8_lib decodes a (174, 87) rate-1/2 code with column degree 3
    // (kgoba/ft8_lib, SNIPPETS.md). Same length, rate and density here.
    {"ft8-174",
     "ft8_lib-style (174, 87) rate-1/2 embedded code, column degree 3",
     {/*block_rows=*/87, /*block_cols=*/174, /*z=*/1,
      /*info_row_degree=*/3, /*seed=*/0xF78174ULL}},
    // Hobbyist demo decoders (hamsternz-style) run very short blocks where
    // the whole Tanner graph fits on a whiteboard; 32 bits, rate 1/2.
    {"hamsternz-demo-32",
     "hamsternz-style (32, 16) rate-1/2 whiteboard demo code",
     {/*block_rows=*/16, /*block_cols=*/32, /*z=*/1,
      /*info_row_degree=*/3, /*seed=*/0xDE3032ULL}},
};

struct Entry {
  ExternalCodeInfo info;
  std::string alist;
  std::unique_ptr<QCLdpcCode> code;  ///< built on first external_code()
};

/// Registry singleton: alist text is generated eagerly (cheap, and it pins
/// the canonical bytes), the parsed code lazily under the same mutex.
class Registry {
 public:
  static Registry& instance() {
    static Registry registry;
    return registry;
  }

  const std::vector<std::string>& names() const { return names_; }

  Entry& entry(const std::string& name) LDPC_REQUIRES(mutex_) {
    const auto it = entries_.find(name);
    LDPC_CHECK_MSG(it != entries_.end(),
                   "unknown external code '" << name << "'");
    return it->second;
  }

  const QCLdpcCode& code(const std::string& name) LDPC_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    Entry& e = entry(name);
    if (!e.code) {
      // The import path is the point: parse the canonical alist text just
      // like a matrix handed over by a foreign toolchain.
      e.code = std::make_unique<QCLdpcCode>(alist_from_string(e.alist));
    }
    return *e.code;
  }

  Mutex mutex_;

 private:
  Registry() {
    for (const Recipe& r : kRecipes) {
      Entry e;
      e.info.name = r.name;
      e.info.description = r.description;
      const QCLdpcCode built = make_dense_code(r.config);
      e.info.n = built.n();
      e.info.k = built.k();
      e.alist = to_alist(built);
      names_.emplace_back(r.name);
      entries_.emplace(r.name, std::move(e));
    }
  }

  std::vector<std::string> names_;  ///< immutable after construction
  std::map<std::string, Entry> entries_ LDPC_GUARDED_BY(mutex_);
};

}  // namespace

const std::vector<std::string>& external_code_names() {
  return Registry::instance().names();
}

const ExternalCodeInfo& external_code_info(const std::string& name) {
  Registry& r = Registry::instance();
  const MutexLock lock(r.mutex_);
  return r.entry(name).info;
}

const QCLdpcCode& external_code(const std::string& name) {
  return Registry::instance().code(name);
}

const std::string& external_code_alist(const std::string& name) {
  Registry& r = Registry::instance();
  const MutexLock lock(r.mutex_);
  return r.entry(name).alist;
}

}  // namespace ldpc
