#include "codes/encoder.hpp"

#include <algorithm>

namespace ldpc {
namespace {

/// Block vector of z bits, one byte per bit (encoding is not a hot path and
/// byte addressing keeps the rotations trivially correct).
using Block = std::vector<std::uint8_t>;

/// y[r] = x[(r + shift) % z] — multiplication by the circulant P^shift.
Block rotate(const Block& x, int shift) {
  const auto z = x.size();
  Block y(z);
  for (std::size_t r = 0; r < z; ++r) y[r] = x[(r + static_cast<std::size_t>(shift)) % z];
  return y;
}

void xor_into(Block& acc, const Block& x) {
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= x[i];
}

}  // namespace

// ---------------------------------------------------------------------------
// RuEncoder
// ---------------------------------------------------------------------------

RuEncoder::RuEncoder(const QCLdpcCode& code) : code_(code) {
  const BaseMatrix& b = code_.base();
  const std::size_t mb = b.rows();
  const std::size_t nb = b.cols();
  const std::size_t kb = nb - mb;

  // The weight-3 column must be the first parity column.
  std::vector<std::size_t> w3_rows;
  for (std::size_t r = 0; r < mb; ++r)
    if (!b.is_zero_block(r, kb)) w3_rows.push_back(r);
  LDPC_CHECK_MSG(w3_rows.size() == 3,
                 b.name() << ": first parity column must have weight 3, has "
                          << w3_rows.size());
  LDPC_CHECK(w3_rows.front() == 0 && w3_rows.back() == mb - 1);

  w3_.first_row = w3_rows[0];
  w3_.mid_row = w3_rows[1];
  w3_.last_row = w3_rows[2];
  w3_.first_shift = b.at(w3_.first_row, kb);
  w3_.mid_shift = b.at(w3_.mid_row, kb);
  w3_.last_shift = b.at(w3_.last_row, kb);

  // Two of the three shifts cancel in the all-rows sum; the remaining one
  // determines p0.
  if (w3_.first_shift == w3_.last_shift)
    w3_.odd_shift = w3_.mid_shift;
  else if (w3_.first_shift == w3_.mid_shift)
    w3_.odd_shift = w3_.last_shift;
  else if (w3_.mid_shift == w3_.last_shift)
    w3_.odd_shift = w3_.first_shift;
  else
    throw Error(b.name() + ": weight-3 column needs two equal shifts");

  // Remaining parity columns must form the shift-0 dual diagonal.
  for (std::size_t j = 1; j < mb; ++j) {
    const std::size_t col = kb + j;
    for (std::size_t r = 0; r < mb; ++r) {
      const bool expected = (r + 1 == j) || (r == j);
      LDPC_CHECK_MSG(b.is_zero_block(r, col) == !expected,
                     b.name() << ": parity part is not dual-diagonal at ("
                              << r << "," << col << ")");
      if (expected)
        LDPC_CHECK_MSG(b.at(r, col) == 0,
                       b.name() << ": dual-diagonal shifts must be 0");
    }
  }
}

std::size_t RuEncoder::k() const { return code_.k(); }
std::size_t RuEncoder::n() const { return code_.n(); }

BitVec RuEncoder::encode(const BitVec& info) const {
  LDPC_CHECK(info.size() == k());
  const BaseMatrix& b = code_.base();
  const auto z = static_cast<std::size_t>(code_.z());
  const std::size_t mb = b.rows();
  const std::size_t kb = b.cols() - mb;

  // Unpack info into blocks.
  std::vector<Block> u(kb, Block(z, 0));
  for (std::size_t j = 0; j < kb; ++j)
    for (std::size_t r = 0; r < z; ++r) u[j][r] = info.get(j * z + r) ? 1 : 0;

  // Layer syndromes over the information part: s_i = sum_j P^{p(i,j)} u_j.
  std::vector<Block> s(mb, Block(z, 0));
  for (std::size_t i = 0; i < mb; ++i)
    for (std::size_t j = 0; j < kb; ++j)
      if (!b.is_zero_block(i, j)) xor_into(s[i], rotate(u[j], b.at(i, j)));

  // p0 from the all-rows sum: P^{odd_shift} p0 = sum_i s_i.
  Block total(z, 0);
  for (const Block& si : s) xor_into(total, si);
  // rotate(p0, odd)[r] = p0[(r+odd)%z] = total[r]  =>  p0[r'] = total[(r'-odd) mod z]
  Block p0(z);
  for (std::size_t r = 0; r < z; ++r)
    p0[(r + static_cast<std::size_t>(w3_.odd_shift)) % z] = total[r];

  // Forward substitution along the dual diagonal.
  std::vector<Block> q(mb);  // q[0] unused; q[j] is parity column kb + j
  Block carry = s[0];
  xor_into(carry, rotate(p0, w3_.first_shift));
  q[1] = carry;
  for (std::size_t i = 1; i + 1 < mb; ++i) {
    carry = s[i];
    xor_into(carry, q[i]);
    if (i == w3_.mid_row) xor_into(carry, rotate(p0, w3_.mid_shift));
    q[i + 1] = carry;
  }

  // Assemble systematic codeword.
  BitVec word(n());
  for (std::size_t i = 0; i < info.size(); ++i) word.set(i, info.get(i));
  for (std::size_t r = 0; r < z; ++r) word.set(kb * z + r, p0[r] != 0);
  for (std::size_t j = 1; j < mb; ++j)
    for (std::size_t r = 0; r < z; ++r) word.set((kb + j) * z + r, q[j][r] != 0);
  return word;
}

// ---------------------------------------------------------------------------
// DenseEncoder
// ---------------------------------------------------------------------------

DenseEncoder::DenseEncoder(const QCLdpcCode& code)
    : k_(code.k()), n_(code.n()), m_(code.m()) {
  words_per_row_ = (m_ + 63) / 64;

  // Dense parity part of H (columns k_..n_-1), augmented with the identity;
  // Gauss-Jordan yields the inverse.
  const std::size_t stride = 2 * words_per_row_;
  std::vector<std::uint64_t> aug(m_ * stride, 0);
  auto set_bit = [&](std::size_t row, std::size_t col) {
    aug[row * stride + (col >> 6)] ^= 1ULL << (col & 63);
  };
  for (std::size_t check = 0; check < m_; ++check) {
    for (std::uint32_t var : code.check_adjacency()[check])
      if (var >= k_) set_bit(check, var - k_);
    set_bit(check, m_ + check);  // identity half
  }

  for (std::size_t col = 0; col < m_; ++col) {
    // Find a pivot row with a 1 in this column at or below `col`.
    std::size_t pivot = col;
    while (pivot < m_ &&
           !((aug[pivot * stride + (col >> 6)] >> (col & 63)) & 1ULL))
      ++pivot;
    LDPC_CHECK_MSG(pivot < m_, "parity part of H is singular at column " << col);
    if (pivot != col)
      for (std::size_t w = 0; w < stride; ++w)
        std::swap(aug[pivot * stride + w], aug[col * stride + w]);
    // Eliminate every other row.
    for (std::size_t row = 0; row < m_; ++row) {
      if (row == col) continue;
      if ((aug[row * stride + (col >> 6)] >> (col & 63)) & 1ULL)
        for (std::size_t w = 0; w < stride; ++w)
          aug[row * stride + w] ^= aug[col * stride + w];
    }
  }

  hp_inverse_.assign(m_ * words_per_row_, 0);
  for (std::size_t row = 0; row < m_; ++row)
    for (std::size_t c = 0; c < m_; ++c)
      if ((aug[row * stride + ((m_ + c) >> 6)] >> ((m_ + c) & 63)) & 1ULL)
        hp_inverse_[row * words_per_row_ + (c >> 6)] |= 1ULL << (c & 63);

  info_adj_.resize(m_);
  for (std::size_t check = 0; check < m_; ++check)
    for (std::uint32_t var : code.check_adjacency()[check])
      if (var < k_) info_adj_[check].push_back(var);
}

std::size_t DenseEncoder::k() const { return k_; }
std::size_t DenseEncoder::n() const { return n_; }

BitVec DenseEncoder::encode(const BitVec& info) const {
  LDPC_CHECK(info.size() == k_);

  // Right-hand side: b = H_u * u.
  std::vector<std::uint64_t> rhs(words_per_row_, 0);
  for (std::size_t check = 0; check < m_; ++check) {
    bool parity = false;
    for (std::uint32_t var : info_adj_[check]) parity ^= info.get(var);
    if (parity) rhs[check >> 6] |= 1ULL << (check & 63);
  }

  // p = Hp^{-1} * b (bit dot products of packed rows with rhs).
  BitVec word(n_);
  for (std::size_t i = 0; i < info.size(); ++i) word.set(i, info.get(i));
  for (std::size_t row = 0; row < m_; ++row) {
    std::uint64_t acc = 0;
    for (std::size_t w = 0; w < words_per_row_; ++w)
      acc ^= hp_inverse_[row * words_per_row_ + w] & rhs[w];
    if (__builtin_parityll(acc)) word.set(k_ + row, true);
  }
  return word;
}

}  // namespace ldpc
