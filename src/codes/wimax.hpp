// IEEE 802.16e (WiMAX) LDPC code tables.
//
// The standard defines six base matrices (one per rate family), each 24
// block-columns wide and designed for z0 = 96 (n = 2304). Codeword lengths
// from 576 to 2304 are obtained by scaling the shift coefficients down to
// z in {24, 28, ..., 96}: rate 2/3A uses the modulo rule, all other
// families use the floor rule (per 802.16e §8.4.9.2.5).
#pragma once

#include <string>
#include <vector>

#include "codes/qc_code.hpp"

namespace ldpc {

enum class WimaxRate {
  kRate1_2,   ///< 12 x 24 base matrix
  kRate2_3A,  ///< 8 x 24, modulo shift scaling
  kRate2_3B,  ///< 8 x 24
  kRate3_4A,  ///< 6 x 24
  kRate3_4B,  ///< 6 x 24
  kRate5_6,   ///< 4 x 24
};

/// All six rate families, for parameterized sweeps.
const std::vector<WimaxRate>& all_wimax_rates();

/// Human-readable name, e.g. "wimax-1/2".
std::string wimax_rate_name(WimaxRate rate);

/// The z0=96 design base matrix of a rate family.
const BaseMatrix& wimax_base_matrix(WimaxRate rate);

/// True for the one family (2/3A) that scales shifts modulo z.
bool wimax_uses_mod_scaling(WimaxRate rate);

/// Valid expansion factors: 24, 28, ..., 96.
const std::vector<int>& wimax_z_values();

/// Build the expanded code for (rate family, z). n = 24 * z.
QCLdpcCode make_wimax_code(WimaxRate rate, int z);

/// Convenience: the paper's case-study code, (2304, rate 1/2), z = 96.
QCLdpcCode make_wimax_2304_half_rate();

/// R-memory slots a decoder supporting every 802.16e rate family must
/// provision: the maximum circulant count over the six base matrices (the
/// paper's R SRAM has 84 slots of z*8 bits).
std::size_t wimax_max_r_slots();

}  // namespace ldpc
