// External-code registry: named, dense (z = 1) codes wired through the
// alist import path as first-class entries next to the standard tables.
//
// The decode service's multi-tenant mixes pair full 802.16e/802.11n QC
// codes with small embedded-style codes — the shape of the ft8_lib
// (174, 87) FT8 code and of hobbyist demo decoders (hamsternz-style short
// blocks). We do not ship those projects' matrices; each registry entry is
// a deterministic construction with the same geometry (length, rate,
// column degree), serialized to alist text once and *re-imported through
// read_alist* on first use, so every registry lookup exercises the exact
// interchange path an externally designed matrix would take.
#pragma once

#include <string>
#include <vector>

#include "codes/qc_code.hpp"

namespace ldpc {

/// One registered external code. `alist` is the canonical interchange text
/// (what a foreign toolchain would hand us); `code` is built by parsing it.
struct ExternalCodeInfo {
  std::string name;         ///< registry key, e.g. "ft8-174"
  std::string description;  ///< one-line provenance note
  std::size_t n = 0;        ///< codeword length
  std::size_t k = 0;        ///< information bits
};

/// Names of all registered external codes, in registry order. The wire
/// protocol's registry codec ids index into this vector.
const std::vector<std::string>& external_code_names();

/// Registry metadata for `name`. Throws ldpc::Error for unknown names.
const ExternalCodeInfo& external_code_info(const std::string& name);

/// The code itself, built by running the entry's alist text through
/// read_alist (cached after the first import; the reference stays valid for
/// the program's lifetime). Throws ldpc::Error for unknown names.
const QCLdpcCode& external_code(const std::string& name);

/// The canonical alist text of a registry entry — what write_alist produced
/// for the constructed matrix and what external_code() re-imports. Exposed
/// so tests can corrupt it and assert the import path rejects the damage.
const std::string& external_code_alist(const std::string& name);

}  // namespace ldpc
