// Bounded retry with escalation for failed decodes.
//
// The paper's early-termination decoder spends its iteration budget
// unevenly: most frames converge in a few iterations, a tail exhausts the
// budget (kMaxIterations), oscillates (kWatchdogAbort) or is corrupted by
// an injected fault (kFaultDetected). A serving layer gets a second chance
// at that tail by re-decoding the same frame on an *escalated* decoder —
// more iterations first, then a wider fixed-point format — instead of
// either dropping the frame or provisioning every decode for the worst
// case. RetryPolicy says when to retry and how often; the escalation-ladder
// helpers build the per-rung DecoderFactory list the BatchEngine consumes.
//
// Determinism: retries are keyed by (frame_index, attempt) — see
// retry_seed() — never by worker or wall clock, so a retried batch is
// bit-identical for any worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"
#include "core/decoder_factory.hpp"
#include "core/quant.hpp"
#include "util/rng.hpp"

namespace ldpc {

/// Bit for one DecodeStatus in a retryable-status mask.
constexpr std::uint32_t retry_status_bit(DecodeStatus s) {
  return 1U << static_cast<unsigned>(s);
}

/// The statuses worth retrying: decode failures that a bigger budget or a
/// wider format can plausibly fix. Deadline/shed outcomes are terminal (the
/// caller already gave up on the frame), and kConverged needs no retry.
constexpr std::uint32_t kDefaultRetryStatuses =
    retry_status_bit(DecodeStatus::kMaxIterations) |
    retry_status_bit(DecodeStatus::kWatchdogAbort) |
    retry_status_bit(DecodeStatus::kFaultDetected);

struct RetryPolicy {
  /// Total decode attempts per frame, including the first (1 = no retry).
  std::size_t max_attempts = 1;
  /// OR of retry_status_bit() — which final statuses trigger a retry.
  std::uint32_t retry_statuses = kDefaultRetryStatuses;

  bool enabled() const { return max_attempts > 1; }

  /// Should a frame whose `attempt`-th decode (1-based) ended with `status`
  /// be re-submitted?
  bool should_retry(DecodeStatus status, std::size_t attempt) const;

  /// No retries (the default-constructed policy, named for readability).
  static RetryPolicy none() { return {}; }

  /// Retry up to `attempts` total attempts on the default status set.
  static RetryPolicy up_to(std::size_t attempts);
};

/// Throws ldpc::Error on nonsensical configuration (zero attempts, or a
/// mask that marks kConverged as retryable).
void validate(const RetryPolicy& policy);

/// Deterministic per-attempt seed derivation: a splitmix64 stream keyed by
/// (base_seed, frame_index, attempt). Tasks that consume randomness must
/// derive it from this (or equivalent) so retried batches stay bit-identical
/// across worker counts and overload policies.
inline std::uint64_t retry_seed(std::uint64_t base_seed,
                                std::size_t frame_index, std::size_t attempt) {
  std::uint64_t sm = base_seed ^ 0x9e3779b97f4a7c15ULL * (frame_index + 1);
  sm += 0xd1b54a32d192ed03ULL * (attempt + 1);
  return splitmix64(sm);
}

/// What reaching a rung *means* for the failed frame. kRedecode rungs
/// re-run the same received LLRs on an escalated decoder (more iterations,
/// wider format) — graceful degradation in compute. kRequestRedundancy
/// rungs are graceful degradation in *information*: before the re-decode
/// the supervisor asks the link layer (DecodeSupervisor's redundancy hook)
/// to combine one HARQ retransmission into the frame's LLR buffer; if the
/// link has no transmissions left the frame resolves with the typed
/// DecodeStatus::kHarqExhausted instead of silently re-decoding stale LLRs.
enum class RungKind : std::uint8_t {
  kRedecode,           ///< re-decode the same LLRs on this rung's decoder
  kRequestRedundancy,  ///< combine a retransmission first (HARQ)
};

inline const char* to_string(RungKind k) {
  switch (k) {
    case RungKind::kRedecode:          return "redecode";
    case RungKind::kRequestRedundancy: return "request-redundancy";
  }
  return "?";
}

/// One rung of the escalation ladder: the decoder configuration a retry
/// attempt escalates to.
struct EscalationRung {
  std::size_t max_iterations = 0;  ///< iteration budget at this rung
  FixedFormat format;              ///< message quantization at this rung
  RungKind kind = RungKind::kRedecode;
};

/// The canonical ladder for the paper's fixed-point layered decoder:
/// rung 1 doubles the iteration budget at the base format (converges the
/// slow tail); rung 2 triples it *and* widens the format by two bits
/// (recovers frames the base quantization itself is failing). Wider than
/// 16 bits saturates at 16 (the decoder's format ceiling).
std::vector<EscalationRung> default_escalation_ladder(
    std::size_t base_iterations, FixedFormat base_format);

/// The HARQ ladder: every retry attempt first combines one retransmission
/// (RungKind::kRequestRedundancy) and re-decodes at the base budget/format —
/// recovery comes from new channel information, not from a wider datapath.
/// One rung suffices for any attempt count (the engine clamps rungs beyond
/// the ladder to its last entry), but the kind must still be declared per
/// rung so mixed ladders (redecode first, then redundancy) stay expressible.
std::vector<EscalationRung> harq_escalation_ladder(std::size_t base_iterations,
                                                   FixedFormat base_format);

/// Project the per-rung kinds out of a ladder, in rung order — the shape
/// SupervisorConfig::rung_kinds consumes.
std::vector<RungKind> rung_kinds_of(const std::vector<EscalationRung>& ladder);

/// Build the per-rung DecoderFactory list for BatchEngineConfig::
/// escalation_factories: each rung is the paper's layered fixed-point
/// decoder with the rung's budget and format, sharing `base` for every
/// other option. `code` must outlive every decoder the factories create.
std::vector<DecoderFactory> make_escalation_factories(
    const QCLdpcCode& code, const DecoderOptions& base,
    const std::vector<EscalationRung>& ladder);

}  // namespace ldpc
