// Supervision and admission-control layer over the batch decode engine.
//
// BatchEngine moves frames through a worker pool; DecodeSupervisor makes
// that pool a *service*: every job carries an optional deadline, failed
// decodes are re-submitted under a bounded retry/escalation policy
// (runtime/retry_policy.hpp), the queue's overload policy turns producer
// overrun into explicit rejection or shedding instead of unbounded memory,
// and worker quarantine (BatchEngineConfig::quarantine_strike_threshold)
// retires decoding threads that keep producing damaged results.
//
// Retry flow: the supervisor wraps every submission in a task that, on a
// retryable final status, re-enqueues the frame with the next escalation
// rung — via the engine's capacity-exempt retry path, so a worker can never
// deadlock against its own backlog. The caller's result slot always ends up
// holding the *final* attempt's result (or kDeadlineExpired / kShedOverload
// if the system gave up before a decoder ran). Attempts are keyed by
// (frame_index, attempt), preserving the engine's determinism contract:
// decoded results are bit-identical for any worker count.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/batch_engine.hpp"
#include "runtime/retry_policy.hpp"
#include "util/thread_annotations.hpp"

namespace ldpc {

/// Called (on a worker thread) before re-submitting a frame whose next rung
/// is RungKind::kRequestRedundancy: the link layer combines one HARQ
/// retransmission into the frame's LLR buffer (src/harq/llr_buffer.hpp) so
/// the re-decode sees new channel information. `next_attempt` is the
/// 1-based attempt the redundancy feeds. Return false when the frame's
/// transmission budget is exhausted — the frame then resolves exactly once
/// with DecodeStatus::kHarqExhausted. Attempts for a frame are strictly
/// sequential, so the hook may mutate that frame's state without locks; it
/// must derive any randomness from (frame_index, next_attempt), never from
/// the worker, to preserve the engine's determinism contract.
using RedundancyHook =
    std::function<bool(std::size_t frame_index, std::size_t next_attempt)>;

struct SupervisorConfig {
  BatchEngineConfig engine;  ///< pool size, queue, quarantine, escalation
  RetryPolicy retry;         ///< when and how often to re-attempt
  /// Kind of each escalation rung, parallel to engine.escalation_factories
  /// (attempt a uses rung a - 1; rungs beyond the list clamp to its last
  /// entry, mirroring the engine's factory clamp). Empty = every rung
  /// kRedecode, the pre-HARQ behaviour.
  std::vector<RungKind> rung_kinds;
  /// Required when any rung is kRequestRedundancy; never called otherwise.
  RedundancyHook on_redundancy_request;
};

/// Retry/recovery accounting, aggregated over the supervisor's lifetime.
struct RetryStats {
  std::size_t retries_submitted = 0;  ///< re-attempts enqueued
  /// Retries skipped because the frame's deadline had already passed when
  /// its previous attempt finished (the re-decode would be dead on arrival).
  std::size_t retries_abandoned_deadline = 0;
  /// Frames whose decode ended (any status) on attempt a, indexed [a - 1].
  std::vector<std::size_t> finished_by_attempt;
  /// Frames whose *final converged* decode happened on attempt a, [a - 1]:
  /// index 0 is first-try convergence, higher indices are rescues by the
  /// escalation ladder.
  std::vector<std::size_t> recovered_by_attempt;
  /// Frames that burned every attempt and still failed.
  std::size_t exhausted_frames = 0;
  /// Retransmissions the redundancy hook granted (kRequestRedundancy rungs).
  std::size_t redundancy_requests = 0;
  /// Frames finalized kHarqExhausted: the ladder asked for a retransmission
  /// and the link had none left. Disjoint from exhausted_frames (those
  /// burned max_attempts; these stopped earlier, out of redundancy).
  std::size_t harq_exhausted_frames = 0;
};

struct SupervisorMetrics {
  EngineMetrics engine;
  RetryStats retry;
};

class DecodeSupervisor {
 public:
  /// Per-attempt task builder for task-based submissions: called with the
  /// 1-based attempt number, returns the task to run. Any randomness the
  /// task consumes must derive from (frame_index, attempt) — use
  /// retry_seed() — so retries stay deterministic.
  using TaskFactory = std::function<BatchEngine::Task(std::size_t attempt)>;

  DecodeSupervisor(DecoderFactory primary, SupervisorConfig config);

  /// Submit one frame of LLRs. `*slot` (required; must outlive drain())
  /// receives the final attempt's result. `deadline`, when set, bounds the
  /// frame's total time in the system across all attempts.
  [[nodiscard]] SubmitStatus submit(
      std::size_t frame_index, std::vector<float> llr, DecodeResult* slot,
      std::optional<std::chrono::steady_clock::time_point> deadline = {});

  /// Submit a task-based job (e.g. a whole generate-transmit-decode-score
  /// frame). `factory(attempt)` builds each attempt's task; the engine runs
  /// it with the escalation-rung decoder for that attempt.
  [[nodiscard]] SubmitStatus submit_task(
      std::size_t frame_index, TaskFactory factory, DecodeResult* slot,
      std::optional<std::chrono::steady_clock::time_point> deadline = {});

  /// Block until every submitted frame (including its retries) completed.
  void drain() { engine_.drain(); }

  /// Bounded drain with straggler report; see BatchEngine::drain_until.
  DrainReport drain_until(std::chrono::steady_clock::time_point deadline) {
    return engine_.drain_until(deadline);
  }
  DrainReport drain_for(std::chrono::nanoseconds timeout) {
    return engine_.drain_for(timeout);
  }

  SupervisorMetrics metrics() const;

  /// The underlying engine (e.g. for decode_batch-style direct use).
  BatchEngine& engine() { return engine_; }

  const RetryPolicy& retry_policy() const { return config_.retry; }

 private:
  /// Mutable per-frame state shared between this supervisor and the
  /// attempt tasks in flight for the frame.
  struct JobControl {
    std::size_t frame_index = 0;
    std::vector<float> llr;    ///< retained for re-decodes (llr jobs)
    TaskFactory task_factory;  ///< set for task jobs instead of llr
    DecodeResult* slot = nullptr;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::size_t attempt = 1;  ///< attempt currently running (1-based)
  };

  BatchEngine::Task make_attempt(std::shared_ptr<JobControl> control);
  /// Kind of escalation rung `rung` (1-based attempt - 1), clamped to the
  /// configured list; kRedecode when no kinds were configured.
  RungKind rung_kind_for(std::size_t rung) const;
  void on_attempt_done(const std::shared_ptr<JobControl>& control,
                       const DecodeResult& result)
      LDPC_EXCLUDES(stats_mutex_);

  SupervisorConfig config_;
  BatchEngine engine_;

  mutable Mutex stats_mutex_;
  RetryStats stats_ LDPC_GUARDED_BY(stats_mutex_);
};

}  // namespace ldpc
