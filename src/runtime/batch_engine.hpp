// Multi-codeword batch decode engine.
//
// The library's decoders process one frame per call; production traffic
// arrives as streams of frames. BatchEngine maps a stream onto a pool of
// worker threads, each owning a private Decoder instance (decoders carry
// mutable message memory), fed through a bounded job queue whose overload
// policy (block / reject-newest / shed-oldest) is the backpressure or
// admission-control mechanism.
//
// Service-grade extras on top of the plain pool:
//   * per-job deadlines — a job that expires while queued is completed with
//     DecodeStatus::kDeadlineExpired without touching a decoder, and a
//     cooperative CancelToken makes a running decode bail between layers
//     once its deadline passes;
//   * worker supervision — a worker whose strike count (exceptions +
//     fault-detected / watchdog-abort outcomes) trips a threshold is
//     quarantined and a replacement thread is spawned from the factory;
//   * escalation rungs — jobs may request a decoder from an escalation
//     ladder (e.g. more iterations, wider fixed-point format) instead of
//     the primary factory, the mechanism the retry supervisor
//     (runtime/supervisor.hpp) builds on;
//   * drain_until — a bounded drain that reports straggler frames instead
//     of blocking forever on a wedged job.
//
// Determinism contract: the engine never makes an output depend on which
// worker ran a job or in what order jobs completed. Results land in
// caller-provided slots addressed by frame index, and any randomness a
// submitted task consumes must be derived from data baked into the task
// (e.g. frame index and attempt number) — the same discipline the BER
// harness follows. Under that contract the output of a batch is
// bit-identical for every worker count. Deadlines and load shedding are
// inherently timing-dependent and sit outside the contract: which frames
// expire or are shed can vary, but the result of every frame that *is*
// decoded cannot.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/decoder.hpp"
#include "core/decoder_factory.hpp"
#include "runtime/job_queue.hpp"
#include "util/thread_annotations.hpp"

namespace ldpc {

struct BatchEngineConfig {
  unsigned num_workers = 1;
  /// Jobs the queue holds before the overload policy engages.
  std::size_t queue_capacity = 256;
  /// What a full queue does to a blocking submit: kBlock (backpressure,
  /// the default), kRejectNewest (admission control) or kShedOldest
  /// (load shedding; the evicted job completes as kShedOverload).
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// Worker supervision: quarantine a worker once its strike count
  /// (exceptions + kFaultDetected / kWatchdogAbort outcomes) reaches this
  /// threshold, spawning a replacement from the factory. 0 disables.
  std::size_t quarantine_strike_threshold = 0;
  /// Lifetime cap on replacement workers; once exhausted, strikes no longer
  /// quarantine (the pool must never shrink to zero decoding threads).
  std::size_t max_replacement_workers = 4;
  /// Escalation decoder ladder: a job submitted with rung r >= 1 decodes on
  /// escalation_factories[min(r, size) - 1] instead of the primary factory
  /// (rungs beyond the ladder clamp to its last entry; an empty ladder
  /// clamps every rung to the primary decoder). Used by the retry
  /// supervisor to re-attempt failed frames with more iterations or a
  /// wider fixed-point format.
  std::vector<DecoderFactory> escalation_factories;
  /// Cap on retained per-job latency samples. 0 (default) keeps every
  /// sample — right for bounded batches, where percentiles are exact. A
  /// long-running service sets a cap: once reached, samples are admitted by
  /// deterministic reservoir sampling (seeded from the sample ordinal, not
  /// wall time), so the latency summary stays an unbiased estimate while
  /// memory stays O(cap) over days of traffic.
  std::size_t latency_sample_cap = 0;
  /// Frames per block for decode_batch(): values > 1 group consecutive
  /// frames into block jobs so an inter-frame-batched decoder
  /// (Decoder::block_width() > 1) keeps every SIMD lane full. 0 and 1 both
  /// mean per-frame jobs. Deadlines, cancellation, and the determinism
  /// contract are unchanged — each frame still resolves exactly once into
  /// its own slot; only queue granularity (and therefore shed/occupancy
  /// granularity) becomes the block.
  std::size_t block_frames = 1;
};

/// Per-worker aggregation of the DecodeResult / saturation statistics the
/// decoders already produce, plus failure accounting. Only jobs that
/// actually ran a decode count here; queue-expired and shed jobs are
/// engine-level events (EngineMetrics::jobs_expired / jobs_shed).
struct EngineWorkerStats {
  std::size_t jobs = 0;
  std::size_t sum_iterations = 0;
  /// Decodes that satisfied parity and stopped (DecodeStatus::kConverged) —
  /// the early-termination events that make average latency < worst case.
  std::size_t early_terminations = 0;
  /// Outcome histogram indexed by static_cast<std::size_t>(DecodeStatus).
  std::array<std::size_t, kNumDecodeStatuses> status_counts{};
  SaturationStats saturation;  ///< accumulated over this worker's decodes
  std::size_t exceptions = 0;  ///< jobs whose decode/task threw
  /// Decodes a SIMD decoder delegated to its scalar twin instead of the
  /// lane kernel (DecodeResult::simd_fallback != kNone). A benchmark or
  /// serving config silently riding the slow-but-correct scalar path shows
  /// up here instead of as a mystery throughput cliff.
  std::size_t simd_fallbacks = 0;
  /// Supervision strikes: exceptions plus fault-detected / watchdog-abort
  /// decode outcomes — the "this worker keeps producing damaged results"
  /// signal the quarantine threshold is compared against.
  std::size_t strikes = 0;
  bool quarantined = false;  ///< retired by supervision; thread has exited
};

/// Order statistics of per-job latency (enqueue -> completion, so queue
/// wait is included — the number a caller sizing queue_capacity cares
/// about). Microseconds. Only decoded jobs contribute samples; expired and
/// shed jobs would skew the distribution with near-zero non-decodes.
struct LatencySummary {
  std::size_t samples = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

struct EngineMetrics {
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;  ///< includes expired and shed jobs
  std::size_t decoded_bits = 0;  ///< sum of codeword lengths n decoded
  /// Sum of information-bit counts k over decoded frames (0 when the
  /// decoders cannot report k). Kept separate from decoded_bits because
  /// "info throughput" and "code throughput" differ by the code rate and
  /// conflating them misquotes results by 2x at rate 1/2.
  std::size_t decoded_info_bits = 0;
  /// Deadline expired while queued: completed without touching a decoder.
  std::size_t jobs_expired = 0;
  /// Evicted from a full queue under kShedOldest (completed kShedOverload).
  std::size_t jobs_shed = 0;
  /// Refused at submit: kRejectNewest on a full queue, or engine stopped.
  std::size_t jobs_rejected = 0;
  std::size_t workers_quarantined = 0;
  std::size_t workers_spawned = 0;  ///< replacement threads started
  /// First submit -> last completion (now, while jobs are in flight).
  double wall_seconds = 0.0;
  /// Coded-bit rate: decoded_bits / wall_seconds / 1e6. The number to
  /// compare against the paper's "decoding throughput" figures.
  double code_throughput_mbps = 0.0;
  /// Information-bit rate: decoded_info_bits / wall_seconds / 1e6 —
  /// code_throughput_mbps * rate. The number a link budget cares about.
  double info_throughput_mbps = 0.0;
  std::size_t queue_capacity = 0;
  double queue_mean_occupancy = 0.0;
  std::size_t queue_max_occupancy = 0;
  LatencySummary latency;
  std::vector<EngineWorkerStats> workers;

  /// Sum of one status bucket over all workers.
  std::size_t status_total(DecodeStatus s) const;
  std::size_t sum_iterations() const;
  double avg_iterations() const;
};

/// What happened to a submitted job at the queue door.
enum class SubmitStatus {
  kAccepted,
  kAcceptedShedOldest,  ///< accepted; the oldest queued job was evicted
  kRejectedQueueFull,   ///< kRejectNewest policy refused it (slot untouched)
  kRejectedClosed,      ///< engine stopped; job not enqueued
};

/// True for the two statuses under which the job will complete.
inline bool submit_accepted(SubmitStatus s) {
  return s == SubmitStatus::kAccepted || s == SubmitStatus::kAcceptedShedOldest;
}

inline const char* to_string(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::kAccepted:          return "accepted";
    case SubmitStatus::kAcceptedShedOldest: return "accepted-shed-oldest";
    case SubmitStatus::kRejectedQueueFull: return "rejected-queue-full";
    case SubmitStatus::kRejectedClosed:    return "rejected-closed";
  }
  return "?";
}

/// Per-job submission options.
struct JobOptions {
  /// Absolute completion deadline. A job still queued past its deadline is
  /// completed kDeadlineExpired without decoding; a job mid-decode bails
  /// cooperatively at the next layer boundary (decoders that support
  /// CancelToken). No deadline = the job may wait and run forever.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Escalation rung selecting the decoder (0 = primary factory).
  unsigned rung = 0;
};

/// One frame of a block submission (submit_block): the engine-owned LLRs,
/// the caller's result slot, and an optional per-frame deadline. Frames in
/// one block share a worker and a decoder call but resolve individually —
/// every frame's slot is written exactly once, expired frames are reported
/// kDeadlineExpired without decoding, and the rest of the block decodes
/// normally.
struct BlockFrameJob {
  std::size_t frame_index = 0;
  std::vector<float> llr;
  DecodeResult* slot = nullptr;
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Result of a bounded drain (drain_until / drain_for).
struct DrainReport {
  bool completed = false;        ///< all jobs finished before the deadline
  std::size_t outstanding = 0;   ///< jobs still queued or running at return
  /// Frame indices of the stragglers, ascending (one entry per frame even
  /// if it has several attempts in flight).
  std::vector<std::size_t> straggler_frames;
};

class BatchEngine {
 public:
  /// A unit of work executed on a worker thread with that worker's decoder
  /// (the rung decoder the job asked for). Must derive any randomness it
  /// consumes from data baked into the task (e.g. a frame index), never
  /// from the worker. The returned DecodeResult feeds the engine's
  /// statistics.
  using Task = std::function<DecodeResult(Decoder&)>;

  /// Spawns the worker pool; `factory` is invoked once on each worker
  /// thread (it must be safe to call concurrently).
  BatchEngine(DecoderFactory factory, BatchEngineConfig config = {});

  /// Drains nothing: outstanding jobs still run to completion, but the
  /// destructor does not wait for a drain() the caller skipped. It closes
  /// the queue and joins the workers.
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  /// Submit one decode job. `*slot` receives the result when the job
  /// completes; it must stay valid until drain() returns and must be unique
  /// per job (slot-per-frame-index is the determinism contract). Blocks
  /// while the queue is full under kBlock; never blocks under the other
  /// overload policies. The caller must handle rejection (the LLR frame is
  /// consumed only when the submit is accepted).
  [[nodiscard]] SubmitStatus submit(std::size_t frame_index,
                                    std::vector<float> llr, DecodeResult* slot,
                                    JobOptions options = {});

  /// Non-blocking submit: false (llr left intact) when the queue is full.
  /// Policy-independent — never sheds and never counts as a rejection.
  bool try_submit(std::size_t frame_index, std::vector<float>& llr,
                  DecodeResult* slot, JobOptions options = {});

  /// Submit an arbitrary task (the BER harness submits whole
  /// generate-transmit-decode-score frames). The task owns delivering its
  /// result (a retry layer may have the next attempt in flight by the time
  /// the task returns, so the engine must not write the slot after running
  /// it). `slot`, when non-null, is written only when the engine completes
  /// the job *without running the task* — deadline expiry in the queue
  /// (kDeadlineExpired) or eviction under kShedOldest (kShedOverload) —
  /// which is how those outcomes reach the caller.
  [[nodiscard]] SubmitStatus submit_task(std::size_t frame_index, Task task,
                                         JobOptions options = {},
                                         DecodeResult* slot = nullptr);

  /// Submit a block of frames as one queue entry, decoded by one worker in
  /// a single Decoder::decode_block call — the path that keeps an
  /// inter-frame-batched SIMD decoder's lanes full. Each frame counts as
  /// one job in the engine's counters and resolves exactly once: expired
  /// frames complete kDeadlineExpired (at pop, or cooperatively mid-decode
  /// via their per-frame CancelToken), shed blocks complete every frame
  /// kShedOverload, and decoded frames land in their own slots. `rung`
  /// selects the decoder for the whole block. Blocks may be any size >= 1
  /// (a ragged final block simply leaves lanes idle).
  [[nodiscard]] SubmitStatus submit_block(std::vector<BlockFrameJob> frames,
                                          unsigned rung = 0);

  /// Capacity-exempt resubmission for retry layers: enqueues even on a full
  /// queue so a worker-thread callback can never deadlock the pool against
  /// its own backlog (bounded in practice by the number of in-flight jobs).
  /// Returns false only when the engine is stopped.
  [[nodiscard]] bool submit_retry(std::size_t frame_index, Task task,
                                  JobOptions options = {},
                                  DecodeResult* slot = nullptr);

  /// Block until every job submitted so far has completed.
  void drain() LDPC_EXCLUDES(state_mutex_);

  /// Bounded drain: wait until every submitted job completes or `deadline`
  /// passes, whichever is first. On timeout the report lists the straggler
  /// frames still in flight — the caller decides whether to keep waiting,
  /// shed, or tear down; the engine never hangs a serving thread forever.
  DrainReport drain_until(std::chrono::steady_clock::time_point deadline)
      LDPC_EXCLUDES(state_mutex_);

  /// Convenience overload: drain with a relative timeout.
  DrainReport drain_for(std::chrono::nanoseconds timeout) {
    return drain_until(std::chrono::steady_clock::now() + timeout);
  }

  /// Synchronous convenience wrapper: decode `frames`, return results in
  /// input order. Equivalent to submit-all + drain. When
  /// config.block_frames > 1, consecutive frames are grouped into
  /// submit_block calls of that size (final block ragged).
  std::vector<DecodeResult> decode_batch(
      const std::vector<std::vector<float>>& frames);

  /// Tear-free snapshot of the engine counters; callable from any thread at
  /// any time, including while jobs are in flight. Every field — job
  /// counters, per-worker stats, latency percentiles *and* the queue
  /// occupancy statistics — is captured under the engine's state mutex in
  /// one critical section, so a stats endpoint polling mid-burst can never
  /// observe, say, jobs_completed from after a completion but a latency
  /// distribution from before it (workers take the same mutex to record
  /// both together).
  EngineMetrics snapshot() const LDPC_EXCLUDES(state_mutex_);

  /// Back-compat alias for snapshot().
  EngineMetrics metrics() const { return snapshot(); }

  unsigned num_workers() const { return config_.num_workers; }

 private:
  struct Job {
    std::size_t frame_index = 0;
    std::vector<float> llr;
    DecodeResult* slot = nullptr;
    Task task;  ///< when set, runs instead of decoder.decode(llr)
    std::optional<std::chrono::steady_clock::time_point> deadline;
    unsigned rung = 0;
    std::chrono::steady_clock::time_point enqueued;
    /// Non-empty: this is a block job (one decode_block call); the scalar
    /// fields above except rung/enqueued are unused.
    std::vector<BlockFrameJob> block;
  };

  void worker_main(unsigned worker_id);
  /// Run a block job on this worker's decoder: expired frames complete at
  /// pop, the rest decode in one decode_block call with per-frame cancel
  /// tokens, and every frame's stats/latency/slot resolve exactly once.
  void run_block_job(unsigned worker_id, Job& job, Decoder& decoder,
                     CancelToken& worker_token, bool* retire)
      LDPC_EXCLUDES(state_mutex_);
  Job make_job(std::size_t frame_index, std::vector<float>&& llr,
               DecodeResult* slot, Task&& task, const JobOptions& options);
  void record_submit(std::size_t frame_index) LDPC_EXCLUDES(state_mutex_);
  void unrecord_submit(std::size_t frame_index, bool rejected)
      LDPC_EXCLUDES(state_mutex_);
  /// Complete a job that never reached a decoder (expired / shed).
  void complete_undecoded(Job&& job, DecodeStatus status)
      LDPC_EXCLUDES(state_mutex_);
  /// Bookkeeping for one finished job.
  void finish_job_locked(std::size_t frame_index,
                         std::chrono::steady_clock::time_point now)
      LDPC_REQUIRES(state_mutex_);
  /// Admit one latency sample into the (possibly capped) reservoir.
  void record_latency_locked(double us) LDPC_REQUIRES(state_mutex_);
  /// Quarantine worker_id if its strikes crossed the threshold, spawning a
  /// replacement. Returns true when the calling worker must retire.
  bool maybe_quarantine_locked(unsigned worker_id)
      LDPC_REQUIRES(state_mutex_);

  DecoderFactory factory_;
  BatchEngineConfig config_;
  BoundedJobQueue<Job> queue_;

  mutable Mutex state_mutex_;
  std::condition_variable all_done_;
  /// The pool itself is guarded: a quarantined worker appends its
  /// replacement thread concurrently with the destructor's join loop.
  std::vector<std::thread> workers_ LDPC_GUARDED_BY(state_mutex_);
  std::size_t submitted_ LDPC_GUARDED_BY(state_mutex_) = 0;
  std::size_t completed_ LDPC_GUARDED_BY(state_mutex_) = 0;
  std::size_t decoded_bits_ LDPC_GUARDED_BY(state_mutex_) = 0;
  std::size_t decoded_info_bits_ LDPC_GUARDED_BY(state_mutex_) = 0;
  std::size_t jobs_expired_ LDPC_GUARDED_BY(state_mutex_) = 0;
  std::size_t jobs_shed_ LDPC_GUARDED_BY(state_mutex_) = 0;
  std::size_t jobs_rejected_ LDPC_GUARDED_BY(state_mutex_) = 0;
  std::size_t workers_quarantined_ LDPC_GUARDED_BY(state_mutex_) = 0;
  std::size_t workers_spawned_ LDPC_GUARDED_BY(state_mutex_) = 0;
  /// Frames submitted but not yet completed (frame -> in-flight attempts);
  /// the straggler report of drain_until reads this.
  std::map<std::size_t, unsigned> outstanding_ LDPC_GUARDED_BY(state_mutex_);
  bool started_ LDPC_GUARDED_BY(state_mutex_) = false;
  std::chrono::steady_clock::time_point first_enqueue_
      LDPC_GUARDED_BY(state_mutex_);
  std::chrono::steady_clock::time_point last_complete_
      LDPC_GUARDED_BY(state_mutex_);
  std::vector<double> latency_us_ LDPC_GUARDED_BY(state_mutex_);
  /// Admitted + reservoir-skipped samples.
  std::size_t latency_samples_seen_ LDPC_GUARDED_BY(state_mutex_) = 0;
  std::vector<EngineWorkerStats> worker_stats_ LDPC_GUARDED_BY(state_mutex_);
};

}  // namespace ldpc
