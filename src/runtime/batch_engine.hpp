// Multi-codeword batch decode engine.
//
// The library's decoders process one frame per call; production traffic
// arrives as streams of frames. BatchEngine maps a stream onto a pool of
// worker threads, each owning a private Decoder instance (decoders carry
// mutable message memory), fed through a bounded job queue whose blocking
// push is the backpressure mechanism.
//
// Determinism contract: the engine never makes an output depend on which
// worker ran a job or in what order jobs completed. Results land in
// caller-provided slots addressed by frame index, and any randomness a
// submitted task consumes must be derived from its frame index — the same
// discipline the BER harness follows. Under that contract the output of a
// batch is bit-identical for every worker count.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/decoder.hpp"
#include "core/decoder_factory.hpp"
#include "runtime/job_queue.hpp"

namespace ldpc {

struct BatchEngineConfig {
  unsigned num_workers = 1;
  /// Jobs the queue holds before submit() blocks (backpressure depth).
  std::size_t queue_capacity = 256;
};

/// Per-worker aggregation of the DecodeResult / saturation statistics the
/// decoders already produce, plus failure accounting.
struct EngineWorkerStats {
  std::size_t jobs = 0;
  std::size_t sum_iterations = 0;
  /// Decodes that satisfied parity and stopped (DecodeStatus::kConverged) —
  /// the early-termination events that make average latency < worst case.
  std::size_t early_terminations = 0;
  /// Outcome histogram indexed by static_cast<std::size_t>(DecodeStatus).
  std::array<std::size_t, 4> status_counts{};
  SaturationStats saturation;  ///< accumulated over this worker's decodes
  std::size_t exceptions = 0;  ///< jobs whose decode/task threw
};

/// Order statistics of per-job latency (enqueue -> completion, so queue
/// wait is included — the number a caller sizing queue_capacity cares
/// about). Microseconds.
struct LatencySummary {
  std::size_t samples = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

struct EngineMetrics {
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;
  std::size_t decoded_bits = 0;  ///< sum of codeword lengths decoded
  /// First submit -> last completion (now, while jobs are in flight).
  double wall_seconds = 0.0;
  double throughput_mbps = 0.0;  ///< decoded_bits / wall_seconds / 1e6
  std::size_t queue_capacity = 0;
  double queue_mean_occupancy = 0.0;
  std::size_t queue_max_occupancy = 0;
  LatencySummary latency;
  std::vector<EngineWorkerStats> workers;

  /// Sum of one status bucket over all workers.
  std::size_t status_total(DecodeStatus s) const;
  std::size_t sum_iterations() const;
  double avg_iterations() const;
};

class BatchEngine {
 public:
  /// A unit of work executed on a worker thread with that worker's decoder.
  /// Must derive any randomness it consumes from data baked into the task
  /// (e.g. a frame index), never from the worker. The returned DecodeResult
  /// feeds the engine's statistics.
  using Task = std::function<DecodeResult(Decoder&)>;

  /// Spawns the worker pool; `factory` is invoked once on each worker
  /// thread (it must be safe to call concurrently).
  BatchEngine(DecoderFactory factory, BatchEngineConfig config = {});

  /// Drains nothing: outstanding jobs still run to completion, but the
  /// destructor does not wait for a drain() the caller skipped. It closes
  /// the queue and joins the workers.
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  /// Submit one decode job. `*slot` receives the result when the job
  /// completes; it must stay valid until drain() returns and must be unique
  /// per job (slot-per-frame-index is the determinism contract). Blocks
  /// while the queue is full.
  void submit(std::size_t frame_index, std::vector<float> llr,
              DecodeResult* slot);

  /// Non-blocking submit: false (llr left intact) when the queue is full.
  bool try_submit(std::size_t frame_index, std::vector<float>& llr,
                  DecodeResult* slot);

  /// Submit an arbitrary task (the BER harness submits whole
  /// generate-transmit-decode-score frames). Blocks while the queue is full.
  void submit_task(std::size_t frame_index, Task task);

  /// Block until every job submitted so far has completed.
  void drain();

  /// Synchronous convenience wrapper: decode `frames`, return results in
  /// input order. Equivalent to submit-all + drain.
  std::vector<DecodeResult> decode_batch(
      const std::vector<std::vector<float>>& frames);

  /// Snapshot of the engine counters; callable at any time, including while
  /// jobs are in flight.
  EngineMetrics metrics() const;

  unsigned num_workers() const { return config_.num_workers; }

 private:
  struct Job {
    std::size_t frame_index = 0;
    std::vector<float> llr;
    DecodeResult* slot = nullptr;
    Task task;  ///< when set, runs instead of decoder.decode(llr)
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_main(unsigned worker_id);
  Job make_job(std::size_t frame_index, std::vector<float>&& llr,
               DecodeResult* slot, Task&& task);
  void record_submit();
  void unrecord_submit();

  DecoderFactory factory_;
  BatchEngineConfig config_;
  BoundedJobQueue<Job> queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex state_mutex_;
  std::condition_variable all_done_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t decoded_bits_ = 0;
  bool started_ = false;
  std::chrono::steady_clock::time_point first_enqueue_;
  std::chrono::steady_clock::time_point last_complete_;
  std::vector<double> latency_us_;
  std::vector<EngineWorkerStats> worker_stats_;
};

}  // namespace ldpc
