// Bounded multi-producer/multi-consumer job queue with overload policies.
//
// The runtime batch engine's backpressure primitive. What happens when a
// producer outruns the worker pool is a policy choice:
//
//   kBlock        — `push` blocks once `capacity` jobs are waiting, so the
//                   producer is throttled instead of growing an unbounded
//                   backlog (decode jobs carry whole LLR frames — thousands
//                   of floats each). The original behavior.
//   kRejectNewest — `push` on a full queue fails immediately with
//                   kRejected; the caller keeps the job (admission control:
//                   new work is turned away at the door).
//   kShedOldest   — `push` on a full queue evicts the oldest queued job to
//                   make room (load shedding: stale work is dropped in
//                   favor of fresh work — the right policy when jobs have
//                   deadlines and the oldest is the most likely to be dead
//                   on arrival anyway). The displaced job is handed back so
//                   the caller can complete it as shed.
//
// Post-push queue depths are recorded into a RunningStats so the engine can
// report how full the queue actually ran; shed/reject events are counted.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>

#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace ldpc {

/// What a full queue does to an incoming push (see file comment).
enum class OverloadPolicy { kBlock, kRejectNewest, kShedOldest };

inline const char* to_string(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::kBlock:        return "block";
    case OverloadPolicy::kRejectNewest: return "reject-newest";
    case OverloadPolicy::kShedOldest:   return "shed-oldest";
  }
  return "?";
}

template <typename T>
class BoundedJobQueue {
 public:
  /// Outcome of a policy-aware push.
  enum class PushResult {
    kAccepted,     ///< item enqueued
    kClosed,       ///< queue closed; item left unconsumed
    kRejected,     ///< full under kRejectNewest; item left unconsumed
    kAcceptedShed  ///< item enqueued, oldest job evicted (kShedOldest)
  };

  explicit BoundedJobQueue(std::size_t capacity,
                           OverloadPolicy policy = OverloadPolicy::kBlock)
      : capacity_(capacity), policy_(policy) {
    LDPC_CHECK_MSG(capacity >= 1, "queue capacity must be >= 1");
  }

  /// Policy-aware push. Under kBlock this waits while the queue is full
  /// (backpressure); under kRejectNewest / kShedOldest it never blocks.
  /// On kAcceptedShed the evicted job is moved into `*shed` when `shed` is
  /// non-null (callers that must complete every accepted job pass it);
  /// otherwise the evicted job is destroyed.
  PushResult push(T&& item, T* shed = nullptr) LDPC_EXCLUDES(mutex_) {
    PushResult result = PushResult::kClosed;
    {
      MutexLock lock(mutex_);
      if (policy_ == OverloadPolicy::kBlock) {
        while (!closed_ && items_.size() >= capacity_) lock.wait(not_full_);
        if (closed_) return PushResult::kClosed;
      } else if (!closed_ && items_.size() >= capacity_) {
        if (policy_ == OverloadPolicy::kRejectNewest) {
          ++rejected_;
          return PushResult::kRejected;
        }
        // kShedOldest: evict the head to make room for the tail.
        if (shed) *shed = std::move(items_.front());
        items_.pop_front();
        ++shed_;
        enqueue(std::move(item));
        result = PushResult::kAcceptedShed;
      }
      if (result == PushResult::kClosed) {
        if (closed_) return PushResult::kClosed;
        enqueue(std::move(item));
        result = PushResult::kAccepted;
      }
    }
    not_empty_.notify_one();
    return result;
  }

  /// Capacity-exempt push: enqueues even on a full queue (false only when
  /// closed). The escape hatch for *re*-submissions — a worker thread that
  /// retries a failed job must never block on queue space, or a full queue
  /// of retryable jobs deadlocks the pool. Bounded in practice because
  /// retries never exceed the number of in-flight jobs.
  bool push_forced(T&& item) LDPC_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_) return false;
      enqueue(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed; `item` is moved from
  /// only on success. Policy-independent (never sheds).
  bool try_push(T& item) LDPC_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      enqueue(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop: waits while empty. Returns false once the queue is
  /// closed *and* drained — the consumer-thread exit signal.
  bool pop(T& out) LDPC_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.empty()) lock.wait(not_empty_);
      if (items_.empty()) return false;  // closed and drained
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Close the queue: pending pushes fail, consumers drain what is left and
  /// then see pop() == false. Idempotent.
  void close() LDPC_EXCLUDES(mutex_) {
    {
      const MutexLock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }
  OverloadPolicy policy() const { return policy_; }

  std::size_t size() const LDPC_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return items_.size();
  }

  bool closed() const LDPC_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return closed_;
  }

  /// Jobs evicted under kShedOldest since construction.
  std::size_t shed_count() const LDPC_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return shed_;
  }

  /// Pushes refused under kRejectNewest since construction.
  std::size_t rejected_count() const LDPC_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return rejected_;
  }

  /// Snapshot of the post-push depth statistics (mean/max occupancy).
  RunningStats occupancy() const LDPC_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return occupancy_;
  }

 private:
  /// Append + depth accounting; callers notify not_empty_ after unlocking.
  void enqueue(T&& item) LDPC_REQUIRES(mutex_) {
    items_.push_back(std::move(item));
    occupancy_.add(static_cast<double>(items_.size()));
  }

  mutable Mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_ LDPC_GUARDED_BY(mutex_);
  std::size_t capacity_;
  OverloadPolicy policy_;
  bool closed_ LDPC_GUARDED_BY(mutex_) = false;
  std::size_t shed_ LDPC_GUARDED_BY(mutex_) = 0;
  std::size_t rejected_ LDPC_GUARDED_BY(mutex_) = 0;
  RunningStats occupancy_ LDPC_GUARDED_BY(mutex_);
};

}  // namespace ldpc
