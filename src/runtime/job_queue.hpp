// Bounded multi-producer/multi-consumer job queue.
//
// The runtime batch engine's backpressure primitive: `push` blocks once
// `capacity` jobs are waiting, so a producer that outruns the worker pool is
// throttled instead of growing an unbounded backlog (decode jobs carry whole
// LLR frames — thousands of floats each). Post-push queue depths are
// recorded into a RunningStats so the engine can report how full the queue
// actually ran.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace ldpc {

template <typename T>
class BoundedJobQueue {
 public:
  explicit BoundedJobQueue(std::size_t capacity) : capacity_(capacity) {
    LDPC_CHECK_MSG(capacity >= 1, "queue capacity must be >= 1");
  }

  /// Blocking push: waits while the queue is full (backpressure). Returns
  /// false — leaving `item` unconsumed — if the queue was closed.
  bool push(T&& item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    occupancy_.add(static_cast<double>(items_.size()));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed; `item` is moved from
  /// only on success.
  bool try_push(T& item) {
    std::unique_lock lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    occupancy_.add(static_cast<double>(items_.size()));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop: waits while empty. Returns false once the queue is
  /// closed *and* drained — the consumer-thread exit signal.
  bool pop(T& out) {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Close the queue: pending pushes fail, consumers drain what is left and
  /// then see pop() == false. Idempotent.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

  /// Snapshot of the post-push depth statistics (mean/max occupancy).
  RunningStats occupancy() const {
    const std::scoped_lock lock(mutex_);
    return occupancy_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
  RunningStats occupancy_;
};

}  // namespace ldpc
