#include "runtime/retry_policy.hpp"

#include <algorithm>
#include <memory>

#include "core/layered_minsum_fixed.hpp"
#include "util/check.hpp"

namespace ldpc {

bool RetryPolicy::should_retry(DecodeStatus status,
                               std::size_t attempt) const {
  if (attempt >= max_attempts) return false;
  return (retry_statuses & retry_status_bit(status)) != 0;
}

RetryPolicy RetryPolicy::up_to(std::size_t attempts) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  validate(policy);
  return policy;
}

void validate(const RetryPolicy& policy) {
  LDPC_CHECK_MSG(policy.max_attempts >= 1,
                 "retry policy needs at least one attempt");
  LDPC_CHECK_MSG(
      (policy.retry_statuses & retry_status_bit(DecodeStatus::kConverged)) == 0,
      "a converged decode must never be retried");
  LDPC_CHECK_MSG((policy.retry_statuses &
                  retry_status_bit(DecodeStatus::kHarqExhausted)) == 0,
                 "kHarqExhausted is the supervisor's terminal verdict; "
                 "marking it retryable would loop forever");
}

std::vector<EscalationRung> default_escalation_ladder(
    std::size_t base_iterations, FixedFormat base_format) {
  LDPC_CHECK(base_iterations >= 1);
  validate(base_format);
  EscalationRung more_iterations;
  more_iterations.max_iterations = 2 * base_iterations;
  more_iterations.format = base_format;
  EscalationRung wider_format;
  wider_format.max_iterations = 3 * base_iterations;
  wider_format.format = base_format;
  wider_format.format.total_bits = std::min(base_format.total_bits + 2, 16);
  return {more_iterations, wider_format};
}

std::vector<EscalationRung> harq_escalation_ladder(std::size_t base_iterations,
                                                   FixedFormat base_format) {
  LDPC_CHECK(base_iterations >= 1);
  validate(base_format);
  EscalationRung redundancy;
  redundancy.max_iterations = base_iterations;
  redundancy.format = base_format;
  redundancy.kind = RungKind::kRequestRedundancy;
  return {redundancy};
}

std::vector<RungKind> rung_kinds_of(const std::vector<EscalationRung>& ladder) {
  std::vector<RungKind> kinds;
  kinds.reserve(ladder.size());
  for (const EscalationRung& rung : ladder) kinds.push_back(rung.kind);
  return kinds;
}

std::vector<DecoderFactory> make_escalation_factories(
    const QCLdpcCode& code, const DecoderOptions& base,
    const std::vector<EscalationRung>& ladder) {
  std::vector<DecoderFactory> factories;
  factories.reserve(ladder.size());
  for (const EscalationRung& rung : ladder) {
    LDPC_CHECK(rung.max_iterations >= 1);
    validate(rung.format);
    DecoderOptions options = base;
    options.max_iterations = rung.max_iterations;
    factories.push_back([&code, options, format = rung.format] {
      return std::make_unique<LayeredMinSumFixedDecoder>(code, options, format);
    });
  }
  return factories;
}

}  // namespace ldpc
