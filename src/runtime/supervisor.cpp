#include "runtime/supervisor.hpp"

#include <algorithm>
#include <utility>

namespace ldpc {

DecodeSupervisor::DecodeSupervisor(DecoderFactory primary,
                                   SupervisorConfig config)
    : config_(std::move(config)), engine_(std::move(primary), config_.engine) {
  validate(config_.retry);
  if (config_.retry.enabled())
    LDPC_CHECK_MSG(
        !config_.engine.escalation_factories.empty(),
        "retry without an escalation ladder re-runs the identical decode; "
        "configure BatchEngineConfig::escalation_factories");
  const bool has_harq_rung =
      std::any_of(config_.rung_kinds.begin(), config_.rung_kinds.end(),
                  [](RungKind k) { return k == RungKind::kRequestRedundancy; });
  LDPC_CHECK_MSG(!has_harq_rung || config_.on_redundancy_request != nullptr,
                 "a kRequestRedundancy rung needs the redundancy hook; "
                 "configure SupervisorConfig::on_redundancy_request");
  stats_.finished_by_attempt.resize(config_.retry.max_attempts, 0);
  stats_.recovered_by_attempt.resize(config_.retry.max_attempts, 0);
}

RungKind DecodeSupervisor::rung_kind_for(std::size_t rung) const {
  if (config_.rung_kinds.empty() || rung == 0) return RungKind::kRedecode;
  return config_.rung_kinds[std::min(rung, config_.rung_kinds.size()) - 1];
}

BatchEngine::Task DecodeSupervisor::make_attempt(
    std::shared_ptr<JobControl> control) {
  return [this, control = std::move(control)](Decoder& decoder) {
    const DecodeResult result =
        control->task_factory ? control->task_factory(control->attempt)(decoder)
                              : decoder.decode(control->llr);
    on_attempt_done(control, result);
    return result;
  };
}

void DecodeSupervisor::on_attempt_done(
    const std::shared_ptr<JobControl>& control, const DecodeResult& result) {
  bool retry =
      config_.retry.should_retry(result.status, control->attempt);
  bool abandoned = false;
  bool harq_exhausted = false;
  bool redundancy_granted = false;
  if (retry && control->deadline &&
      std::chrono::steady_clock::now() >= *control->deadline) {
    // The re-decode would expire in the queue anyway; give up now and let
    // this attempt's result stand.
    retry = false;
    abandoned = true;
  }
  if (retry &&
      rung_kind_for(control->attempt) == RungKind::kRequestRedundancy) {
    // The next rung needs new channel information before it may decode. The
    // hook combines one retransmission into the frame's buffer — or reports
    // the link out of redundancy, which is a *typed* terminal outcome, not
    // a silent re-decode of LLRs the ladder already failed on.
    if (config_.on_redundancy_request(control->frame_index,
                                      control->attempt + 1)) {
      redundancy_granted = true;
    } else {
      retry = false;
      harq_exhausted = true;
    }
  }
  if (retry) {
    const std::size_t attempt = ++control->attempt;
    JobOptions options;
    options.deadline = control->deadline;
    // Attempt a runs on escalation rung a - 1 (the engine clamps rungs
    // beyond the ladder to its last entry).
    options.rung = static_cast<unsigned>(attempt - 1);
    // Capacity-exempt: this runs on a worker thread, which must never
    // block on queue space it is itself responsible for freeing.
    if (engine_.submit_retry(control->frame_index, make_attempt(control),
                             options, control->slot)) {
      const MutexLock lock(stats_mutex_);
      ++stats_.retries_submitted;
      if (redundancy_granted) ++stats_.redundancy_requests;
      return;  // the next attempt owns the slot now
    }
    // Engine stopped under us: record this attempt as final.
  }
  // Final attempt: publish the result. Safe without a lock — attempts for a
  // frame are strictly sequential, and drain() observes this write because
  // it happens before the worker's completion bookkeeping.
  DecodeResult final_result = result;
  if (harq_exhausted) final_result.status = DecodeStatus::kHarqExhausted;
  if (control->slot) *control->slot = final_result;
  const MutexLock lock(stats_mutex_);
  // A granted retransmission whose resubmit lost to engine shutdown still
  // consumed link redundancy; account for it.
  if (redundancy_granted) ++stats_.redundancy_requests;
  const std::size_t index =
      std::min(control->attempt, config_.retry.max_attempts) - 1;
  ++stats_.finished_by_attempt[index];
  if (final_result.status == DecodeStatus::kConverged)
    ++stats_.recovered_by_attempt[index];
  else if (harq_exhausted)
    ++stats_.harq_exhausted_frames;
  else if (control->attempt >= config_.retry.max_attempts)
    ++stats_.exhausted_frames;
  if (abandoned) ++stats_.retries_abandoned_deadline;
}

SubmitStatus DecodeSupervisor::submit(
    std::size_t frame_index, std::vector<float> llr, DecodeResult* slot,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  LDPC_CHECK(slot != nullptr);
  auto control = std::make_shared<JobControl>();
  control->frame_index = frame_index;
  control->llr = std::move(llr);
  control->slot = slot;
  control->deadline = deadline;
  JobOptions options;
  options.deadline = deadline;
  return engine_.submit_task(frame_index, make_attempt(std::move(control)),
                             options, slot);
}

SubmitStatus DecodeSupervisor::submit_task(
    std::size_t frame_index, TaskFactory factory, DecodeResult* slot,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  LDPC_CHECK(factory != nullptr);
  LDPC_CHECK(slot != nullptr);
  auto control = std::make_shared<JobControl>();
  control->frame_index = frame_index;
  control->task_factory = std::move(factory);
  control->slot = slot;
  control->deadline = deadline;
  JobOptions options;
  options.deadline = deadline;
  return engine_.submit_task(frame_index, make_attempt(std::move(control)),
                             options, slot);
}

SupervisorMetrics DecodeSupervisor::metrics() const {
  SupervisorMetrics m;
  m.engine = engine_.metrics();
  {
    const MutexLock lock(stats_mutex_);
    m.retry = stats_;
  }
  return m;
}

}  // namespace ldpc
