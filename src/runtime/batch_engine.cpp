#include "runtime/batch_engine.hpp"

#include <algorithm>
#include <utility>

#include "util/rng.hpp"

namespace ldpc {

std::size_t EngineMetrics::status_total(DecodeStatus s) const {
  std::size_t total = 0;
  for (const auto& w : workers)
    total += w.status_counts[static_cast<std::size_t>(s)];
  return total;
}

std::size_t EngineMetrics::sum_iterations() const {
  std::size_t total = 0;
  for (const auto& w : workers) total += w.sum_iterations;
  return total;
}

double EngineMetrics::avg_iterations() const {
  return jobs_completed == 0 ? 0.0
                             : static_cast<double>(sum_iterations()) /
                                   static_cast<double>(jobs_completed);
}

BatchEngine::BatchEngine(DecoderFactory factory, BatchEngineConfig config)
    : factory_(std::move(factory)),
      config_(std::move(config)),
      queue_(config_.queue_capacity, config_.overload_policy) {
  LDPC_CHECK(factory_ != nullptr);
  LDPC_CHECK_MSG(config_.num_workers >= 1, "engine needs >= 1 worker");
  for (const auto& f : config_.escalation_factories)
    LDPC_CHECK_MSG(f != nullptr, "escalation factory must not be null");
  // Held across the spawn loop: the first workers can start decoding (and a
  // quarantined one can append its replacement) while later ones are still
  // being emplaced — workers_ must not be mutated from two threads at once.
  const MutexLock lock(state_mutex_);
  worker_stats_.resize(config_.num_workers);
  workers_.reserve(config_.num_workers + config_.max_replacement_workers);
  for (unsigned w = 0; w < config_.num_workers; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
}

BatchEngine::~BatchEngine() {
  queue_.close();
  // The vector may grow while we join: a quarantined worker appends its
  // replacement before exiting, so joining index i happens-after any
  // append i performed — the re-checked size always catches new threads.
  for (std::size_t i = 0;;) {
    std::thread victim;
    {
      const MutexLock lock(state_mutex_);
      if (i >= workers_.size()) break;
      victim = std::move(workers_[i]);
      ++i;
    }
    if (victim.joinable()) victim.join();
  }
}

BatchEngine::Job BatchEngine::make_job(std::size_t frame_index,
                                       std::vector<float>&& llr,
                                       DecodeResult* slot, Task&& task,
                                       const JobOptions& options) {
  Job job;
  job.frame_index = frame_index;
  job.llr = std::move(llr);
  job.slot = slot;
  job.task = std::move(task);
  job.deadline = options.deadline;
  job.rung = options.rung;
  job.enqueued = std::chrono::steady_clock::now();
  return job;
}

void BatchEngine::record_submit(std::size_t frame_index) {
  const MutexLock lock(state_mutex_);
  if (!started_) {
    started_ = true;
    first_enqueue_ = std::chrono::steady_clock::now();
  }
  ++submitted_;
  ++outstanding_[frame_index];
}

void BatchEngine::unrecord_submit(std::size_t frame_index, bool rejected) {
  const MutexLock lock(state_mutex_);
  --submitted_;
  if (rejected) ++jobs_rejected_;
  const auto it = outstanding_.find(frame_index);
  if (it != outstanding_.end() && --it->second == 0) outstanding_.erase(it);
  // A concurrent drain() may have been waiting on the job that was just
  // backed out; re-evaluate its predicate.
  if (completed_ == submitted_) all_done_.notify_all();
}

void BatchEngine::finish_job_locked(
    std::size_t frame_index, std::chrono::steady_clock::time_point now) {
  last_complete_ = now;
  ++completed_;
  const auto it = outstanding_.find(frame_index);
  if (it != outstanding_.end() && --it->second == 0) outstanding_.erase(it);
  if (completed_ == submitted_) all_done_.notify_all();
}

void BatchEngine::complete_undecoded(Job&& job, DecodeStatus status) {
  const auto write_slot = [status](DecodeResult* slot) {
    if (!slot) return;
    DecodeResult result;
    result.status = status;
    *slot = result;
  };
  if (job.block.empty()) {
    write_slot(job.slot);
    const auto now = std::chrono::steady_clock::now();
    const MutexLock lock(state_mutex_);
    if (status == DecodeStatus::kShedOverload) ++jobs_shed_;
    if (status == DecodeStatus::kDeadlineExpired) ++jobs_expired_;
    finish_job_locked(job.frame_index, now);
    return;
  }
  // A shed block job resolves every one of its frames — a frame that
  // silently vanished would wedge drain() forever.
  for (const BlockFrameJob& frame : job.block) write_slot(frame.slot);
  const auto now = std::chrono::steady_clock::now();
  const MutexLock lock(state_mutex_);
  for (const BlockFrameJob& frame : job.block) {
    if (status == DecodeStatus::kShedOverload) ++jobs_shed_;
    if (status == DecodeStatus::kDeadlineExpired) ++jobs_expired_;
    finish_job_locked(frame.frame_index, now);
  }
}

SubmitStatus BatchEngine::submit(std::size_t frame_index,
                                 std::vector<float> llr, DecodeResult* slot,
                                 JobOptions options) {
  LDPC_CHECK(slot != nullptr);
  record_submit(frame_index);
  Job shed;
  switch (queue_.push(make_job(frame_index, std::move(llr), slot, {}, options),
                      &shed)) {
    case BoundedJobQueue<Job>::PushResult::kClosed:
      unrecord_submit(frame_index, /*rejected=*/true);
      return SubmitStatus::kRejectedClosed;
    case BoundedJobQueue<Job>::PushResult::kRejected:
      unrecord_submit(frame_index, /*rejected=*/true);
      return SubmitStatus::kRejectedQueueFull;
    case BoundedJobQueue<Job>::PushResult::kAcceptedShed:
      complete_undecoded(std::move(shed), DecodeStatus::kShedOverload);
      return SubmitStatus::kAcceptedShedOldest;
    case BoundedJobQueue<Job>::PushResult::kAccepted:
      break;
  }
  return SubmitStatus::kAccepted;
}

bool BatchEngine::try_submit(std::size_t frame_index, std::vector<float>& llr,
                             DecodeResult* slot, JobOptions options) {
  LDPC_CHECK(slot != nullptr);
  record_submit(frame_index);
  Job job = make_job(frame_index, std::move(llr), slot, {}, options);
  if (!queue_.try_push(job)) {
    llr = std::move(job.llr);  // hand the frame back to the caller
    unrecord_submit(frame_index, /*rejected=*/false);
    return false;
  }
  return true;
}

SubmitStatus BatchEngine::submit_task(std::size_t frame_index, Task task,
                                      JobOptions options, DecodeResult* slot) {
  LDPC_CHECK(task != nullptr);
  record_submit(frame_index);
  Job shed;
  switch (queue_.push(make_job(frame_index, {}, slot, std::move(task), options),
                      &shed)) {
    case BoundedJobQueue<Job>::PushResult::kClosed:
      unrecord_submit(frame_index, /*rejected=*/true);
      return SubmitStatus::kRejectedClosed;
    case BoundedJobQueue<Job>::PushResult::kRejected:
      unrecord_submit(frame_index, /*rejected=*/true);
      return SubmitStatus::kRejectedQueueFull;
    case BoundedJobQueue<Job>::PushResult::kAcceptedShed:
      complete_undecoded(std::move(shed), DecodeStatus::kShedOverload);
      return SubmitStatus::kAcceptedShedOldest;
    case BoundedJobQueue<Job>::PushResult::kAccepted:
      break;
  }
  return SubmitStatus::kAccepted;
}

SubmitStatus BatchEngine::submit_block(std::vector<BlockFrameJob> frames,
                                       unsigned rung) {
  LDPC_CHECK_MSG(!frames.empty(), "submit_block needs >= 1 frame");
  for (const BlockFrameJob& f : frames) LDPC_CHECK(f.slot != nullptr);
  // Kept aside before the move: a rejected push must unrecord every frame.
  std::vector<std::size_t> indices;
  indices.reserve(frames.size());
  for (const BlockFrameJob& f : frames) {
    indices.push_back(f.frame_index);
    record_submit(f.frame_index);
  }
  Job job;
  job.rung = rung;
  job.enqueued = std::chrono::steady_clock::now();
  job.block = std::move(frames);
  Job shed;
  switch (queue_.push(std::move(job), &shed)) {
    case BoundedJobQueue<Job>::PushResult::kClosed:
      for (const std::size_t i : indices) unrecord_submit(i, /*rejected=*/true);
      return SubmitStatus::kRejectedClosed;
    case BoundedJobQueue<Job>::PushResult::kRejected:
      for (const std::size_t i : indices) unrecord_submit(i, /*rejected=*/true);
      return SubmitStatus::kRejectedQueueFull;
    case BoundedJobQueue<Job>::PushResult::kAcceptedShed:
      // The evicted queue entry may itself be a block.
      complete_undecoded(std::move(shed), DecodeStatus::kShedOverload);
      return SubmitStatus::kAcceptedShedOldest;
    case BoundedJobQueue<Job>::PushResult::kAccepted:
      break;
  }
  return SubmitStatus::kAccepted;
}

bool BatchEngine::submit_retry(std::size_t frame_index, Task task,
                               JobOptions options, DecodeResult* slot) {
  LDPC_CHECK(task != nullptr);
  record_submit(frame_index);
  if (!queue_.push_forced(
          make_job(frame_index, {}, slot, std::move(task), options))) {
    unrecord_submit(frame_index, /*rejected=*/true);
    return false;
  }
  return true;
}

void BatchEngine::drain() {
  MutexLock lock(state_mutex_);
  while (completed_ != submitted_) lock.wait(all_done_);
}

DrainReport BatchEngine::drain_until(
    std::chrono::steady_clock::time_point deadline) {
  MutexLock lock(state_mutex_);
  DrainReport report;
  report.completed = true;
  while (completed_ != submitted_) {
    if (lock.wait_until(all_done_, deadline) == std::cv_status::timeout) {
      report.completed = completed_ == submitted_;
      break;
    }
  }
  if (!report.completed) {
    report.outstanding = submitted_ - completed_;
    report.straggler_frames.reserve(outstanding_.size());
    for (const auto& entry : outstanding_)
      report.straggler_frames.push_back(entry.first);
  }
  return report;
}

std::vector<DecodeResult> BatchEngine::decode_batch(
    const std::vector<std::vector<float>>& frames) {
  // Sized up front: slots must not move while jobs are in flight.
  std::vector<DecodeResult> results(frames.size());
  const std::size_t bw = std::max<std::size_t>(config_.block_frames, 1);
  if (bw > 1) {
    for (std::size_t base = 0; base < frames.size(); base += bw) {
      const std::size_t count = std::min(bw, frames.size() - base);
      std::vector<BlockFrameJob> block(count);
      for (std::size_t i = 0; i < count; ++i) {
        block[i].frame_index = base + i;
        block[i].llr = frames[base + i];
        block[i].slot = &results[base + i];
      }
      const SubmitStatus s = submit_block(std::move(block));
      LDPC_CHECK_MSG(submit_accepted(s),
                     "decode_batch submit failed: " << to_string(s));
    }
  } else {
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const SubmitStatus s = submit(i, frames[i], &results[i]);
      LDPC_CHECK_MSG(submit_accepted(s),
                     "decode_batch submit failed: " << to_string(s));
    }
  }
  drain();
  return results;
}

void BatchEngine::worker_main(unsigned worker_id) {
  // Rung decoder cache: [0] primary, [r] = escalation ladder entry r - 1.
  // Created lazily so a worker that never sees an escalated job never pays
  // for the wider decoders; each decoder is wired to this worker's cancel
  // token once, at creation.
  std::vector<std::unique_ptr<Decoder>> decoders(
      1 + config_.escalation_factories.size());
  CancelToken cancel;
  auto decoder_for = [&](unsigned rung) -> Decoder& {
    const std::size_t idx =
        std::min<std::size_t>(rung, config_.escalation_factories.size());
    auto& entry = decoders[idx];
    if (!entry) {
      entry = idx == 0 ? factory_() : config_.escalation_factories[idx - 1]();
      LDPC_CHECK(entry != nullptr);
      entry->set_cancel_token(&cancel);
    }
    return *entry;
  };

  Job job;
  while (queue_.pop(job)) {
    bool retire = false;
    if (!job.block.empty()) {
      run_block_job(worker_id, job, decoder_for(job.rung), cancel, &retire);
      job = Job{};
      if (retire) return;
      continue;
    }
    // A queued job whose deadline already passed is completed without
    // touching a decoder — but only when the engine owns a result slot to
    // report through; a slotless task must still run (with the token
    // pre-expired, so a cancellation-aware decode bails at its first poll).
    if (job.deadline && job.slot &&
        std::chrono::steady_clock::now() >= *job.deadline) {
      complete_undecoded(std::move(job), DecodeStatus::kDeadlineExpired);
      job = Job{};
      continue;
    }
    cancel.clear();
    if (job.deadline) cancel.arm_deadline(*job.deadline);

    Decoder& decoder = decoder_for(job.rung);
    DecodeResult result;
    bool failed = false;
    try {
      result = job.task ? job.task(decoder) : decoder.decode(job.llr);
    } catch (...) {
      // A throwing decode must not take the worker (and every queued job
      // behind it) down; it is surfaced as EngineWorkerStats::exceptions
      // and the slot keeps its default (non-converged) DecodeResult.
      failed = true;
    }
    const auto now = std::chrono::steady_clock::now();
    const std::size_t iterations = result.iterations;
    const DecodeStatus status = result.status;
    const bool converged = status == DecodeStatus::kConverged;
    const SimdFallback fallback = result.simd_fallback;
    // Task jobs own their result delivery (a retry layer may already have
    // the *next* attempt in flight by the time the task returns — writing
    // the slot here would race with it); the engine writes task-job slots
    // only for jobs it completed without running (expired / shed).
    if (!failed && job.slot && !job.task) *job.slot = std::move(result);

    const SaturationStats sat = decoder.saturation();
    {
      const MutexLock lock(state_mutex_);
      EngineWorkerStats& stats = worker_stats_[worker_id];
      ++stats.jobs;
      if (failed) {
        ++stats.exceptions;
      } else {
        stats.sum_iterations += iterations;
        stats.status_counts[static_cast<std::size_t>(status)] += 1;
        if (converged) ++stats.early_terminations;
        if (fallback != SimdFallback::kNone) ++stats.simd_fallbacks;
        stats.saturation.quantizer_clips += sat.quantizer_clips;
        stats.saturation.datapath_clips += sat.datapath_clips;
        stats.saturation.q_clips += sat.q_clips;
        stats.saturation.r_clips += sat.r_clips;
        stats.saturation.p_clips += sat.p_clips;
        stats.saturation.degenerate_checks += sat.degenerate_checks;
        decoded_bits_ += decoder.n();
        decoded_info_bits_ += decoder.k();
      }
      if (failed || status == DecodeStatus::kFaultDetected ||
          status == DecodeStatus::kWatchdogAbort)
        ++stats.strikes;
      retire = maybe_quarantine_locked(worker_id);
      record_latency_locked(
          std::chrono::duration<double, std::micro>(now - job.enqueued)
              .count());
      finish_job_locked(job.frame_index, now);
    }
    job = Job{};  // release the frame buffer before blocking on the queue
    if (retire) return;
  }
}

bool BatchEngine::maybe_quarantine_locked(unsigned worker_id) {
  EngineWorkerStats& stats = worker_stats_[worker_id];
  if (config_.quarantine_strike_threshold == 0 || stats.quarantined ||
      stats.strikes < config_.quarantine_strike_threshold ||
      workers_spawned_ >= config_.max_replacement_workers)
    return false;
  // Quarantine: retire this worker and hand its slot in the pool to a
  // fresh thread (and a fresh decoder) from the factory. `stats` is
  // dead after the push_back below — the vector may reallocate.
  stats.quarantined = true;
  ++workers_quarantined_;
  ++workers_spawned_;
  const auto new_id = static_cast<unsigned>(worker_stats_.size());
  worker_stats_.emplace_back();
  workers_.emplace_back([this, new_id] { worker_main(new_id); });
  return true;
}

void BatchEngine::run_block_job(unsigned worker_id, Job& job, Decoder& decoder,
                                CancelToken& worker_token, bool* retire) {
  const auto pop_time = std::chrono::steady_clock::now();
  // Frames already past their deadline complete without decoding, exactly
  // like an expired scalar job at pop; the rest share one decode_block.
  std::vector<BlockFrameJob*> runnable;
  runnable.reserve(job.block.size());
  std::vector<std::size_t> expired;
  for (BlockFrameJob& frame : job.block) {
    if (frame.deadline && pop_time >= *frame.deadline) {
      DecodeResult result;
      result.status = DecodeStatus::kDeadlineExpired;
      *frame.slot = result;
      expired.push_back(frame.frame_index);
    } else {
      runnable.push_back(&frame);
    }
  }

  // Per-frame cancel tokens let one late frame bail at a layer boundary
  // while its lane-mates decode to completion.
  std::vector<CancelToken> tokens(runnable.size());
  std::vector<BlockFrame> frames(runnable.size());
  std::vector<DecodeResult> results(runnable.size());
  std::vector<SaturationStats> sats(runnable.size());
  for (std::size_t i = 0; i < runnable.size(); ++i) {
    if (runnable[i]->deadline) tokens[i].arm_deadline(*runnable[i]->deadline);
    frames[i].llr = runnable[i]->llr;
    frames[i].cancel = &tokens[i];
  }

  bool failed = false;
  if (!runnable.empty()) {
    try {
      decoder.decode_block(frames, results, sats);
    } catch (...) {
      // One throwing block must not take the worker down. Every runnable
      // frame still resolves — with its default (non-converged) result —
      // and the failure counts once against this worker.
      failed = true;
    }
    // decode_block detaches whatever token the per-frame ones replaced;
    // re-attach this worker's own so later scalar jobs keep deadlines.
    decoder.set_cancel_token(&worker_token);
  }
  const auto now = std::chrono::steady_clock::now();
  if (!failed)
    for (std::size_t i = 0; i < runnable.size(); ++i)
      *runnable[i]->slot = std::move(results[i]);

  const double latency_us =
      std::chrono::duration<double, std::micro>(now - job.enqueued).count();
  const MutexLock lock(state_mutex_);
  EngineWorkerStats& stats = worker_stats_[worker_id];
  for (const std::size_t index : expired) {
    ++jobs_expired_;
    finish_job_locked(index, now);
  }
  if (failed) ++stats.exceptions;
  for (std::size_t i = 0; i < runnable.size(); ++i) {
    ++stats.jobs;
    if (!failed) {
      const DecodeResult& res = *runnable[i]->slot;
      stats.sum_iterations += res.iterations;
      stats.status_counts[static_cast<std::size_t>(res.status)] += 1;
      if (res.status == DecodeStatus::kConverged) ++stats.early_terminations;
      if (res.simd_fallback != SimdFallback::kNone) ++stats.simd_fallbacks;
      stats.saturation.quantizer_clips += sats[i].quantizer_clips;
      stats.saturation.datapath_clips += sats[i].datapath_clips;
      stats.saturation.q_clips += sats[i].q_clips;
      stats.saturation.r_clips += sats[i].r_clips;
      stats.saturation.p_clips += sats[i].p_clips;
      stats.saturation.degenerate_checks += sats[i].degenerate_checks;
      decoded_bits_ += decoder.n();
      decoded_info_bits_ += decoder.k();
      if (res.status == DecodeStatus::kFaultDetected ||
          res.status == DecodeStatus::kWatchdogAbort)
        ++stats.strikes;
    }
    record_latency_locked(latency_us);
    finish_job_locked(runnable[i]->frame_index, now);
  }
  if (failed) ++stats.strikes;
  *retire = maybe_quarantine_locked(worker_id);
}

void BatchEngine::record_latency_locked(double us) {
  ++latency_samples_seen_;
  const std::size_t cap = config_.latency_sample_cap;
  if (cap == 0 || latency_us_.size() < cap) {
    latency_us_.push_back(us);
    return;
  }
  // Algorithm R with a deterministic stream: sample i (1-based) replaces a
  // uniformly random reservoir slot with probability cap / i.
  std::uint64_t sm = 0x9e3779b97f4a7c15ULL ^ latency_samples_seen_;
  const std::size_t slot =
      static_cast<std::size_t>(splitmix64(sm) % latency_samples_seen_);
  if (slot < cap) latency_us_[slot] = us;
}

EngineMetrics BatchEngine::snapshot() const {
  EngineMetrics m;
  RunningStats occupancy;
  std::vector<double> latencies;
  {
    const MutexLock lock(state_mutex_);
    // The queue's internal mutex nests inside state_mutex_ here (no engine
    // path acquires them in the opposite order), making the occupancy
    // statistics part of the same consistent cut as the job counters.
    occupancy = queue_.occupancy();
    m.jobs_submitted = submitted_;
    m.jobs_completed = completed_;
    m.decoded_bits = decoded_bits_;
    m.decoded_info_bits = decoded_info_bits_;
    m.jobs_expired = jobs_expired_;
    m.jobs_shed = jobs_shed_;
    m.jobs_rejected = jobs_rejected_;
    m.workers_quarantined = workers_quarantined_;
    m.workers_spawned = workers_spawned_;
    if (started_) {
      const auto end = completed_ == submitted_
                           ? last_complete_
                           : std::chrono::steady_clock::now();
      m.wall_seconds =
          std::chrono::duration<double>(end - first_enqueue_).count();
    }
    m.workers = worker_stats_;
    latencies = latency_us_;
  }
  if (m.wall_seconds > 0.0) {
    m.code_throughput_mbps =
        static_cast<double>(m.decoded_bits) / m.wall_seconds / 1e6;
    m.info_throughput_mbps =
        static_cast<double>(m.decoded_info_bits) / m.wall_seconds / 1e6;
  }
  m.queue_capacity = queue_.capacity();
  m.queue_mean_occupancy = occupancy.mean();
  m.queue_max_occupancy =
      occupancy.count() == 0 ? 0 : static_cast<std::size_t>(occupancy.max());
  std::sort(latencies.begin(), latencies.end());
  m.latency.samples = latencies.size();
  if (!latencies.empty()) {
    double sum = 0.0;
    for (const double v : latencies) sum += v;
    m.latency.mean_us = sum / static_cast<double>(latencies.size());
    m.latency.p50_us = percentile_sorted(latencies, 0.50);
    m.latency.p95_us = percentile_sorted(latencies, 0.95);
    m.latency.p99_us = percentile_sorted(latencies, 0.99);
    m.latency.max_us = latencies.back();
  }
  return m;
}

}  // namespace ldpc
