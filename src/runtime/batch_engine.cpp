#include "runtime/batch_engine.hpp"

#include <algorithm>
#include <utility>

namespace ldpc {

namespace {

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size()));
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

std::size_t EngineMetrics::status_total(DecodeStatus s) const {
  std::size_t total = 0;
  for (const auto& w : workers)
    total += w.status_counts[static_cast<std::size_t>(s)];
  return total;
}

std::size_t EngineMetrics::sum_iterations() const {
  std::size_t total = 0;
  for (const auto& w : workers) total += w.sum_iterations;
  return total;
}

double EngineMetrics::avg_iterations() const {
  return jobs_completed == 0 ? 0.0
                             : static_cast<double>(sum_iterations()) /
                                   static_cast<double>(jobs_completed);
}

BatchEngine::BatchEngine(DecoderFactory factory, BatchEngineConfig config)
    : factory_(std::move(factory)),
      config_(config),
      queue_(config.queue_capacity) {
  LDPC_CHECK(factory_ != nullptr);
  LDPC_CHECK_MSG(config_.num_workers >= 1, "engine needs >= 1 worker");
  worker_stats_.resize(config_.num_workers);
  workers_.reserve(config_.num_workers);
  for (unsigned w = 0; w < config_.num_workers; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
}

BatchEngine::~BatchEngine() {
  queue_.close();
  for (auto& t : workers_) t.join();
}

BatchEngine::Job BatchEngine::make_job(std::size_t frame_index,
                                       std::vector<float>&& llr,
                                       DecodeResult* slot, Task&& task) {
  Job job;
  job.frame_index = frame_index;
  job.llr = std::move(llr);
  job.slot = slot;
  job.task = std::move(task);
  job.enqueued = std::chrono::steady_clock::now();
  return job;
}

void BatchEngine::record_submit() {
  const std::scoped_lock lock(state_mutex_);
  if (!started_) {
    started_ = true;
    first_enqueue_ = std::chrono::steady_clock::now();
  }
  ++submitted_;
}

void BatchEngine::unrecord_submit() {
  const std::scoped_lock lock(state_mutex_);
  --submitted_;
  // A concurrent drain() may have been waiting on the job that was just
  // backed out; re-evaluate its predicate.
  if (completed_ == submitted_) all_done_.notify_all();
}

void BatchEngine::submit(std::size_t frame_index, std::vector<float> llr,
                         DecodeResult* slot) {
  LDPC_CHECK(slot != nullptr);
  record_submit();
  if (!queue_.push(make_job(frame_index, std::move(llr), slot, {}))) {
    unrecord_submit();
    throw Error("BatchEngine: submit on a stopped engine");
  }
}

bool BatchEngine::try_submit(std::size_t frame_index, std::vector<float>& llr,
                             DecodeResult* slot) {
  LDPC_CHECK(slot != nullptr);
  record_submit();
  Job job = make_job(frame_index, std::move(llr), slot, {});
  if (!queue_.try_push(job)) {
    llr = std::move(job.llr);  // hand the frame back to the caller
    unrecord_submit();
    return false;
  }
  return true;
}

void BatchEngine::submit_task(std::size_t frame_index, Task task) {
  LDPC_CHECK(task != nullptr);
  record_submit();
  if (!queue_.push(make_job(frame_index, {}, nullptr, std::move(task)))) {
    unrecord_submit();
    throw Error("BatchEngine: submit on a stopped engine");
  }
}

void BatchEngine::drain() {
  std::unique_lock lock(state_mutex_);
  all_done_.wait(lock, [&] { return completed_ == submitted_; });
}

std::vector<DecodeResult> BatchEngine::decode_batch(
    const std::vector<std::vector<float>>& frames) {
  // Sized up front: slots must not move while jobs are in flight.
  std::vector<DecodeResult> results(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i)
    submit(i, frames[i], &results[i]);
  drain();
  return results;
}

void BatchEngine::worker_main(unsigned worker_id) {
  const std::unique_ptr<Decoder> decoder = factory_();
  Job job;
  while (queue_.pop(job)) {
    DecodeResult result;
    bool failed = false;
    try {
      result = job.task ? job.task(*decoder) : decoder->decode(job.llr);
    } catch (...) {
      // A throwing decode must not take the worker (and every queued job
      // behind it) down; it is surfaced as EngineWorkerStats::exceptions
      // and the slot keeps its default (non-converged) DecodeResult.
      failed = true;
    }
    const auto now = std::chrono::steady_clock::now();
    const std::size_t iterations = result.iterations;
    const auto status_index = static_cast<std::size_t>(result.status);
    const bool converged = result.status == DecodeStatus::kConverged;
    if (!failed && job.slot) *job.slot = std::move(result);

    const SaturationStats sat = decoder->saturation();
    const std::scoped_lock lock(state_mutex_);
    EngineWorkerStats& stats = worker_stats_[worker_id];
    ++stats.jobs;
    if (failed) {
      ++stats.exceptions;
    } else {
      stats.sum_iterations += iterations;
      stats.status_counts[status_index] += 1;
      if (converged) ++stats.early_terminations;
      stats.saturation.quantizer_clips += sat.quantizer_clips;
      stats.saturation.datapath_clips += sat.datapath_clips;
      stats.saturation.degenerate_checks += sat.degenerate_checks;
      decoded_bits_ += decoder->n();
    }
    latency_us_.push_back(
        std::chrono::duration<double, std::micro>(now - job.enqueued).count());
    last_complete_ = now;
    ++completed_;
    if (completed_ == submitted_) all_done_.notify_all();
    job = Job{};  // release the frame buffer before blocking on the queue
  }
}

EngineMetrics BatchEngine::metrics() const {
  EngineMetrics m;
  const RunningStats occupancy = queue_.occupancy();
  std::vector<double> latencies;
  {
    const std::scoped_lock lock(state_mutex_);
    m.jobs_submitted = submitted_;
    m.jobs_completed = completed_;
    m.decoded_bits = decoded_bits_;
    if (started_) {
      const auto end = completed_ == submitted_
                           ? last_complete_
                           : std::chrono::steady_clock::now();
      m.wall_seconds =
          std::chrono::duration<double>(end - first_enqueue_).count();
    }
    m.workers = worker_stats_;
    latencies = latency_us_;
  }
  if (m.wall_seconds > 0.0)
    m.throughput_mbps =
        static_cast<double>(m.decoded_bits) / m.wall_seconds / 1e6;
  m.queue_capacity = queue_.capacity();
  m.queue_mean_occupancy = occupancy.mean();
  m.queue_max_occupancy =
      occupancy.count() == 0 ? 0 : static_cast<std::size_t>(occupancy.max());
  std::sort(latencies.begin(), latencies.end());
  m.latency.samples = latencies.size();
  if (!latencies.empty()) {
    double sum = 0.0;
    for (const double v : latencies) sum += v;
    m.latency.mean_us = sum / static_cast<double>(latencies.size());
    m.latency.p50_us = percentile(latencies, 0.50);
    m.latency.p95_us = percentile(latencies, 0.95);
    m.latency.p99_us = percentile(latencies, 0.99);
    m.latency.max_us = latencies.back();
  }
  return m;
}

}  // namespace ldpc
