#include "hls/hardware_report.hpp"

#include <sstream>

#include "util/table.hpp"

namespace ldpc {

std::vector<HardwareBlock> hardware_inventory(const QCLdpcCode& code,
                                              const HardwareEstimate& est) {
  const auto z = static_cast<long long>(code.z());
  const int w = est.msg_bits;
  const auto nb = static_cast<long long>(code.base().cols());
  const auto slots = static_cast<long long>(code.base().nonzero_blocks());
  const auto qdepth = static_cast<long long>(code.base().max_row_degree());
  const bool pipelined = est.arch == ArchKind::kTwoLayerPipelined;

  std::vector<HardwareBlock> blocks;
  auto geometry = [](long long words, long long width) {
    return std::to_string(words) + " x " + std::to_string(width) + " bits";
  };

  blocks.push_back({"P SRAM", geometry(nb, z * w), nb * z * w, "SRAM"});
  blocks.push_back({"R SRAM", geometry(slots, z * w), slots * z * w, "SRAM"});
  blocks.push_back({"parity check matrix ROM",
                    std::to_string(slots) + " entries", 0, "control"});
  blocks.push_back({"barrel_shifter",
                    std::to_string(z) + " lanes x " + std::to_string(w) +
                        " bits, log2 stages",
                    0, "logic"});
  blocks.push_back({"core1_dp cluster",
                    std::to_string(est.core1_instances) + " copies", 0, "logic"});
  blocks.push_back({"core2_dp cluster",
                    std::to_string(est.core2_instances) + " copies", 0, "logic"});

  const int copies = pipelined ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    const std::string owner = pipelined ? (c == 0 ? " (core1)" : " (core2)") : "";
    blocks.push_back({"min1_array" + owner, geometry(z, w), z * w, "register file"});
    blocks.push_back({"min2_array" + owner, geometry(z, w), z * w, "register file"});
    blocks.push_back({"pos1_array" + owner, geometry(z, 5), z * 5, "register file"});
    blocks.push_back({"sign_array" + owner, geometry(z, 1), z, "register file"});
  }

  if (pipelined) {
    blocks.push_back({"Q FIFO", geometry(qdepth, z * w), qdepth * z * w, "FIFO"});
    blocks.push_back({"scoreboard", geometry(1, nb), nb, "register file"});
  } else {
    blocks.push_back({"Q_array", geometry(qdepth, z * w), qdepth * z * w,
                      "register file"});
  }

  blocks.push_back({"pipeline registers",
                    std::to_string(est.pipeline_reg_bits) + " bits total",
                    est.pipeline_reg_bits, "register file"});
  return blocks;
}

std::string hardware_report(const QCLdpcCode& code, const HardwareEstimate& est) {
  TextTable table("Hardware inventory — " + code.base().name() + ", " +
                  arch_name(est.arch) + " @ " +
                  TextTable::num(est.clock_mhz, 0) + " MHz, parallelism " +
                  std::to_string(est.parallelism));
  table.set_header({"block", "geometry", "bits", "kind"});
  long long total_bits = 0;
  for (const HardwareBlock& b : hardware_inventory(code, est)) {
    table.add_row({b.name, b.geometry,
                   b.bits ? TextTable::integer(b.bits) : std::string("-"),
                   b.kind});
    total_bits += b.bits;
  }
  table.add_rule();
  table.add_row({"total storage", "", TextTable::integer(total_bits), ""});

  std::ostringstream os;
  os << table.str();
  if (code.n() == 2304 && code.z() == 96 && est.msg_bits == 8) {
    os << "Paper reference (Fig. " << (est.arch == ArchKind::kPerLayer ? 5 : 7)
       << ", (2304, 1/2)): P SRAM 24 x 768 bits, R SRAM 84 x 768 bits (84 = "
          "multi-rate provisioning; this code alone uses "
       << code.base().nonzero_blocks()
       << "), min1/min2 96 x 8, pos1 96 x 5, sign 96 x 1, Q "
       << code.base().max_row_degree() << " x 768 bits.\n";
  }
  return os.str();
}

}  // namespace ldpc
