// Verilog RTL generation — the PICO flow's primary output ("the PICO system
// automatically generates the synthesizable RTL", §II).
//
// Emits a structural Verilog-2001 skeleton of the compiled decoder:
// parameterized top module, P/R memory wrappers, the logarithmic barrel
// shifter, core1/core2 datapath lanes pipelined per the HLS schedule, the
// layer-program ROM derived from the parity check matrix, and — for the
// pipelined architecture — the Q FIFO and scoreboard. The output is a
// synthesis bring-up skeleton: structurally complete and internally
// consistent (geometry, widths and the control program all come from the
// same objects the cycle-accurate simulator runs on), intended for human
// review and downstream elaboration rather than as tape-out-ready netlists.
#pragma once

#include <string>

#include "codes/qc_code.hpp"
#include "hls/pico.hpp"

namespace ldpc {

/// The layer-program ROM contents: one line per non-zero circulant in
/// schedule order, as a Verilog case statement body.
std::string generate_matrix_rom(const QCLdpcCode& code);

/// Full decoder skeleton for a compiled design point.
std::string generate_verilog(const QCLdpcCode& code, const HardwareEstimate& est);

}  // namespace ldpc
