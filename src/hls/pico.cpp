#include "hls/pico.hpp"

#include <cmath>

namespace ldpc {

std::string arch_name(ArchKind kind) {
  switch (kind) {
    case ArchKind::kPerLayer:          return "per-layer";
    case ArchKind::kTwoLayerPipelined: return "two-layer-pipelined";
  }
  return "?";
}

OpGraph PicoCompiler::build_core1_graph() const {
  const int w = format_.total_bits;
  OpGraph g;
  // Stage 1 of Algorithm 1: read P (already shifted), read R, Q = P - R,
  // then the min1/min2/pos/sign running update against the state arrays.
  const auto p_read = g.add(OpKind::kSramRead, w, {}, "P_read");
  const auto r_read = g.add(OpKind::kSramRead, w, {}, "R_read");
  const auto q = g.add(OpKind::kSub, w, {p_read, r_read}, "Q=P-R");
  const auto q_abs = g.add(OpKind::kAbs, w, {q}, "|Q|");
  const auto sign = g.add(OpKind::kXor, 1, {q}, "sign_acc");
  const auto cmp1 = g.add(OpKind::kCompare, w, {q_abs}, "cmp_min1");
  const auto min1 = g.add(OpKind::kMux, w, {cmp1, q_abs}, "min1_upd");
  const auto cmp2 = g.add(OpKind::kCompare, w, {q_abs, cmp1}, "cmp_min2");
  const auto min2 = g.add(OpKind::kMux, w, {cmp2, min1}, "min2_upd");
  const auto pos = g.add(OpKind::kMux, 5, {cmp1}, "pos1_upd");
  g.add(OpKind::kWire, 1, {min2, pos, sign, q}, "state_out");
  return g;
}

OpGraph PicoCompiler::build_core2_graph() const {
  const int w = format_.total_bits;
  OpGraph g;
  // Stage 2 of Algorithm 1: pick min1/min2 by position, scale by 0.75,
  // re-apply sign, P' = Q + R', write both memories back.
  const auto pos_cmp = g.add(OpKind::kCompare, 5, {}, "pos==min1?");
  const auto min_sel = g.add(OpKind::kMux, w, {pos_cmp}, "min_select");
  const auto scaled = g.add(OpKind::kScaleShiftAdd, w, {min_sel}, "0.75x");
  const auto sign = g.add(OpKind::kXor, 1, {}, "sign_prod^sign(Q)");
  const auto r_new = g.add(OpKind::kAbs, w, {scaled, sign}, "apply_sign");
  const auto p_new = g.add(OpKind::kAdd, w, {r_new}, "P'=Q+R'");
  g.add(OpKind::kSramWrite, w, {r_new}, "R_write");
  g.add(OpKind::kSramWrite, w, {p_new}, "P_write");
  return g;
}

OpGraph PicoCompiler::build_bp_core1_graph() const {
  const int w = format_.total_bits;
  OpGraph g;
  // Sum-product stage 1: Q = P - R, then the log-domain transform
  // phi(|Q|) = -log tanh(|Q|/2) via LUT, accumulated into a (w+3)-bit sum;
  // the sign chain is identical to min-sum.
  const auto p_read = g.add(OpKind::kSramRead, w, {}, "P_read");
  const auto r_read = g.add(OpKind::kSramRead, w, {}, "R_read");
  const auto q = g.add(OpKind::kSub, w, {p_read, r_read}, "Q=P-R");
  const auto q_abs = g.add(OpKind::kAbs, w, {q}, "|Q|");
  const auto sign = g.add(OpKind::kXor, 1, {q}, "sign_acc");
  const auto phi = g.add(OpKind::kLut, w, {q_abs}, "phi_lut");
  const auto acc = g.add(OpKind::kAdd, w + 3, {phi}, "phi_sum_acc");
  g.add(OpKind::kWire, 1, {acc, sign, q}, "state_out");
  return g;
}

OpGraph PicoCompiler::build_bp_core2_graph() const {
  const int w = format_.total_bits;
  OpGraph g;
  // Sum-product stage 2: per-edge extrinsic = phi^{-1}(sum - phi(|Q|)),
  // which needs a second phi LUT, a wide subtract and the inverse LUT.
  const auto phi = g.add(OpKind::kLut, w, {}, "phi_lut_2");
  const auto diff = g.add(OpKind::kSub, w + 3, {phi}, "sum_minus_phi");
  const auto inv = g.add(OpKind::kLut, w, {diff}, "phi_inv_lut");
  const auto sign = g.add(OpKind::kXor, 1, {}, "sign_prod^sign(Q)");
  const auto r_new = g.add(OpKind::kAbs, w, {inv, sign}, "apply_sign");
  const auto p_new = g.add(OpKind::kAdd, w, {r_new}, "P'=Q+R'");
  g.add(OpKind::kSramWrite, w, {r_new}, "R_write");
  g.add(OpKind::kSramWrite, w, {p_new}, "P_write");
  return g;
}

OpGraph PicoCompiler::build_shifter_graph(int z) const {
  LDPC_CHECK(z >= 2);
  const int w = format_.total_bits;
  OpGraph g;
  // Logarithmic barrel rotator: ceil(log2(z)) mux stages, chained.
  const int stages = static_cast<int>(std::ceil(std::log2(static_cast<double>(z))));
  std::size_t prev = g.add(OpKind::kWire, w, {}, "shift_in");
  for (int s = 0; s < stages; ++s)
    prev = g.add(OpKind::kShiftStage, w, {prev}, "rot_stage" + std::to_string(s));
  return g;
}

HardwareEstimate PicoCompiler::compile(const QCLdpcCode& code, ArchKind arch,
                                       const HardwareTarget& target) const {
  const int z = code.z();
  LDPC_CHECK_MSG(target.parallelism >= 1 && target.parallelism <= z &&
                     z % target.parallelism == 0,
                 "parallelism " << target.parallelism << " must divide z=" << z);
  LDPC_CHECK_MSG(target.clock_mhz > 0.0, "clock must be positive");
  const double period_ns = 1000.0 / target.clock_mhz;

  const OpGraph core1 = build_core1_graph();
  const OpGraph core2 = build_core2_graph();
  const OpGraph shifter = build_shifter_graph(z);

  // The shifter feeds core1 (Fig. 5): schedule the concatenated front-end so
  // chaining across the block boundary is modelled. Rebuild core1 on top of
  // the shifter graph.
  OpGraph front = build_shifter_graph(z);
  {
    const std::size_t shift_out = front.size() - 1;
    const int w = format_.total_bits;
    const auto p_read = shift_out;  // shifted P value
    const auto r_read = front.add(OpKind::kSramRead, w, {}, "R_read");
    const auto q = front.add(OpKind::kSub, w, {p_read, r_read}, "Q=P-R");
    const auto q_abs = front.add(OpKind::kAbs, w, {q}, "|Q|");
    const auto sign = front.add(OpKind::kXor, 1, {q}, "sign_acc");
    const auto cmp1 = front.add(OpKind::kCompare, w, {q_abs}, "cmp_min1");
    const auto min1 = front.add(OpKind::kMux, w, {cmp1, q_abs}, "min1_upd");
    const auto cmp2 = front.add(OpKind::kCompare, w, {q_abs, cmp1}, "cmp_min2");
    const auto min2 = front.add(OpKind::kMux, w, {cmp2, min1}, "min2_upd");
    const auto pos = front.add(OpKind::kMux, 5, {cmp1}, "pos1_upd");
    front.add(OpKind::kWire, 1, {min2, pos, sign, q}, "state_out");
  }
  // The P SRAM read precedes the shifter in its own access slot; model it as
  // a prefix op on the front-end graph.
  OpGraph front_full;
  {
    const int w = format_.total_bits;
    const auto pr = front_full.add(OpKind::kSramRead, w, {}, "P_read");
    std::size_t prev = pr;
    for (const OpNode& n : front.nodes()) {
      std::vector<std::size_t> deps = n.deps;
      for (auto& d : deps) d += 1;  // shifted by the prefix node
      if (deps.empty()) deps.push_back(prev);
      front_full.add(n.kind, n.width, std::move(deps), n.label);
    }
  }

  const ScheduleResult front_sched = schedule(front_full, period_ns);
  const ScheduleResult back_sched = schedule(core2, period_ns);

  HardwareEstimate est;
  est.arch = arch;
  est.clock_mhz = target.clock_mhz;
  est.parallelism = target.parallelism;
  est.fold = z / target.parallelism;
  est.core1_latency = front_sched.latency_cycles;
  est.core2_latency = back_sched.latency_cycles;
  est.core1_instances = target.parallelism;
  est.core2_instances = target.parallelism;
  est.critical_path_ns =
      std::max(front_sched.critical_path_ns, back_sched.critical_path_ns);

  const double p = static_cast<double>(target.parallelism);
  est.datapath_area_um2 =
      p * (core1.total_area_um2() + core2.total_area_um2());
  // Full-z rotator regardless of datapath folding: data still arrives as a
  // z-wide vector from the P memory word.
  const int stages = static_cast<int>(std::ceil(std::log2(static_cast<double>(z))));
  est.shifter_area_um2 = static_cast<double>(z) * static_cast<double>(stages) *
                         op_area_um2(OpKind::kShiftStage, format_.total_bits);

  // Pipeline registers: per instance, plus one set for the z-wide shifter.
  est.pipeline_reg_bits =
      static_cast<long long>(p) * (front_sched.register_bits + back_sched.register_bits);

  // Architectural arrays (Fig. 5 / Fig. 7 block diagrams).
  const int w = format_.total_bits;
  const auto zl = static_cast<long long>(z);
  const auto max_deg = static_cast<long long>(code.base().max_row_degree());
  const long long min_arrays = zl * w * 2;  // min1 + min2
  const long long pos_array = zl * 5;
  const long long sign_array = zl * 1;
  const long long state_arrays = min_arrays + pos_array + sign_array;
  const long long q_storage = max_deg * zl * w;  // Q array or Q FIFO

  const long long front_pipe =
      static_cast<long long>(p) * front_sched.register_bits;
  const long long back_pipe =
      static_cast<long long>(p) * back_sched.register_bits;

  est.msg_bits = w;
  est.reg_bits_state_core1 = state_arrays;
  est.reg_bits_pipe_core1 = front_pipe;
  est.reg_bits_pipe_core2 = back_pipe;
  est.reg_bits_q = q_storage;
  long long arrays = state_arrays + q_storage;
  if (arch == ArchKind::kTwoLayerPipelined) {
    // Each core owns private copies of the state arrays, plus the scoreboard.
    arrays += state_arrays;
    est.reg_bits_state_core2 = state_arrays;
    const auto sb_bits = static_cast<long long>(code.base().cols());
    arrays += sb_bits;
    est.reg_bits_other += sb_bits;
  }
  est.array_reg_bits = arrays;
  return est;
}

}  // namespace ldpc
