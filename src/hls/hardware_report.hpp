// Hardware inventory report — the textual equivalent of the paper's Fig. 5
// (per-layer) and Fig. 7 (pipelined) block diagrams: every memory, array
// and datapath cluster with its geometry, as generated for a given code and
// hardware estimate.
#pragma once

#include <string>

#include "codes/qc_code.hpp"
#include "hls/pico.hpp"

namespace ldpc {

/// One block of the architecture diagram.
struct HardwareBlock {
  std::string name;      ///< e.g. "P SRAM", "min1_array", "core1_dp"
  std::string geometry;  ///< e.g. "24 x 768 bits", "96 copies"
  long long bits = 0;    ///< storage bits (0 for pure logic blocks)
  std::string kind;      ///< "SRAM" | "register file" | "FIFO" | "logic" | "control"
};

/// Enumerate the blocks of Fig. 5 / Fig. 7 for this design point.
std::vector<HardwareBlock> hardware_inventory(const QCLdpcCode& code,
                                              const HardwareEstimate& est);

/// Render the inventory as a table, annotated with the paper's Fig. 5/7
/// reference values for the (2304, 1/2) case study when they apply.
std::string hardware_report(const QCLdpcCode& code, const HardwareEstimate& est);

}  // namespace ldpc
