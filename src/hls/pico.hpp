// PICO high-level-synthesis model: untimed decoder description -> hardware.
//
// PicoCompiler plays the role of the Synfora PICO flow in the paper (see
// DESIGN.md): given the decoder architecture (per-layer or two-layer
// pipelined), the unroll factor (datapath parallelism, Fig. 3) and a target
// clock frequency, it
//   1. builds the operator graphs of the core1 / core2 datapaths and the
//      logarithmic barrel shifter (the blocks of Fig. 5/7),
//   2. schedules them against the clock budget (operator chaining; deeper
//      pipelines at higher frequencies),
//   3. sizes the architectural storage (min1/min2/pos1/sign arrays, Q
//      array or FIFO, scoreboard) from the code geometry, and
//   4. reports instance counts, register bits and combinational area for
//      the area/power models.
#pragma once

#include "codes/qc_code.hpp"
#include "core/quant.hpp"
#include "hls/scheduler.hpp"

namespace ldpc {

enum class ArchKind {
  kPerLayer,           ///< Fig. 4/5: core1 then core2, no overlap
  kTwoLayerPipelined,  ///< Fig. 6/7: core1 of layer l+1 overlaps core2 of l
};

std::string arch_name(ArchKind kind);

struct HardwareTarget {
  double clock_mhz = 400.0;
  int parallelism = 96;  ///< datapath copies (the Fig. 3 unroll factor)
};

struct HardwareEstimate {
  ArchKind arch = ArchKind::kPerLayer;
  double clock_mhz = 0.0;
  int parallelism = 0;
  int fold = 1;  ///< z / parallelism: beats per block-column vector

  // Pipeline depths (cycles) from scheduling at the clock budget.
  int core1_latency = 1;   ///< P read + shift + Q + min tracking
  int core2_latency = 1;   ///< R'/P' compute + write back

  // Structure.
  int core1_instances = 0;
  int core2_instances = 0;

  // Area inputs (std cells only; SRAM macros are handled by AreaModel).
  double datapath_area_um2 = 0.0;   ///< all datapath instances
  double shifter_area_um2 = 0.0;    ///< full-z logarithmic shifter
  long long pipeline_reg_bits = 0;  ///< from scheduling, all instances
  long long array_reg_bits = 0;     ///< min/pos/sign/Q/scoreboard storage
  double critical_path_ns = 0.0;

  // Register breakdown by clock-gating domain (sums to total_reg_bits()).
  // PICO's idle-register gating clocks each class only when it is written,
  // which is what the power model prices.
  long long reg_bits_state_core1 = 0;  ///< min1/min2/pos1/sign arrays (core1)
  long long reg_bits_state_core2 = 0;  ///< core2's private copies (pipelined)
  long long reg_bits_pipe_core1 = 0;   ///< front-end pipeline registers
  long long reg_bits_pipe_core2 = 0;   ///< back-end pipeline registers
  long long reg_bits_q = 0;            ///< Q array / Q FIFO storage
  long long reg_bits_other = 0;        ///< scoreboard, sequencers, misc

  int msg_bits = 8;  ///< message width (for per-lane register accounting)

  long long total_reg_bits() const { return pipeline_reg_bits + array_reg_bits; }
  /// State-array bits one datapath lane owns (min1+min2+pos1+sign).
  int state_bits_per_lane() const { return 2 * msg_bits + 5 + 1; }
  /// One Q FIFO entry (a z-wide vector of Q messages), in bits.
  long long q_entry_bits() const {
    return static_cast<long long>(parallelism) * fold * msg_bits;
  }
};

class PicoCompiler {
 public:
  explicit PicoCompiler(FixedFormat format = FixedFormat{}) : format_(format) {
    validate(format_);
  }

  /// Operator graph of one core1 datapath lane (including the P/R reads).
  OpGraph build_core1_graph() const;
  /// Operator graph of one core2 datapath lane (including the write-backs).
  OpGraph build_core2_graph() const;
  /// Operator graph of the full-width barrel shifter (z lanes).
  OpGraph build_shifter_graph(int z) const;

  /// Hypothetical sum-product (exact boxplus) check-node datapaths, built
  /// from phi-function lookup tables. Not used by the decoder — they exist
  /// to quantify the hardware cost of BP vs min-sum (the justification for
  /// Algorithm 1's min-sum approximation; see bench_ablations).
  OpGraph build_bp_core1_graph() const;
  OpGraph build_bp_core2_graph() const;

  /// Compile for a code / architecture / target. Throws ldpc::Error when the
  /// parallelism does not divide z or the frequency is unschedulable.
  HardwareEstimate compile(const QCLdpcCode& code, ArchKind arch,
                           const HardwareTarget& target) const;

 private:
  FixedFormat format_;
};

}  // namespace ldpc
