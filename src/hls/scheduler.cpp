#include "hls/scheduler.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace ldpc {

std::vector<ScheduledOp> schedule_detail(const OpGraph& graph,
                                         double clock_period_ns,
                                         double sequencing_overhead_ns) {
  LDPC_CHECK(clock_period_ns > sequencing_overhead_ns);
  const double budget = clock_period_ns - sequencing_overhead_ns;

  const auto& nodes = graph.nodes();
  std::vector<ScheduledOp> out(nodes.size());

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double delay = op_delay_ns(nodes[i].kind, nodes[i].width);
    LDPC_CHECK_MSG(delay <= budget,
                   "operator '" << nodes[i].label << "' (" << delay
                                << " ns) cannot meet a " << clock_period_ns
                                << " ns clock");
    // Value availability: produced in an earlier cycle -> registered, usable
    // at offset 0; produced in the same candidate cycle -> chained.
    int c = 0;
    double t = 0.0;
    for (std::size_t d : nodes[i].deps) {
      if (out[d].cycle > c) {
        c = out[d].cycle;
        t = out[d].finish_ns;
      } else if (out[d].cycle == c) {
        t = std::max(t, out[d].finish_ns);
      }
    }
    if (t + delay > budget) {  // does not fit after chaining: next cycle
      ++c;
      t = 0.0;
    }
    out[i] = ScheduledOp{i, c, t, t + delay};
  }
  return out;
}

ScheduleResult schedule(const OpGraph& graph, double clock_period_ns,
                        double sequencing_overhead_ns) {
  const auto detail =
      schedule_detail(graph, clock_period_ns, sequencing_overhead_ns);
  const auto& nodes = graph.nodes();

  ScheduleResult result;
  result.comb_area_um2 = graph.total_area_um2();

  int depth = 0;
  for (const ScheduledOp& op : detail) {
    depth = std::max(depth, op.cycle);
    result.critical_path_ns = std::max(result.critical_path_ns, op.finish_ns);
  }
  result.latency_cycles = depth + 1;

  // Pipeline registers: each node's value must survive until its last
  // consumer's cycle; one register of `width` bits per boundary crossed.
  std::vector<int> last_use(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t d : nodes[i].deps)
      last_use[d] = std::max(last_use[d], detail[i].cycle);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const int span = last_use[i] - detail[i].cycle;
    if (span > 0)
      result.register_bits += static_cast<long long>(span) * nodes[i].width;
  }
  return result;
}

double max_schedulable_mhz(const OpGraph& graph, double sequencing_overhead_ns) {
  double slowest = 0.0;
  for (const OpNode& n : graph.nodes())
    slowest = std::max(slowest, op_delay_ns(n.kind, n.width));
  return 1000.0 / (slowest + sequencing_overhead_ns);
}

std::string schedule_report(const OpGraph& graph, double clock_period_ns,
                            double sequencing_overhead_ns) {
  const auto detail =
      schedule_detail(graph, clock_period_ns, sequencing_overhead_ns);
  const auto& nodes = graph.nodes();

  std::map<int, std::vector<const ScheduledOp*>> by_cycle;
  for (const ScheduledOp& op : detail) by_cycle[op.cycle].push_back(&op);

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  for (const auto& [cycle, ops] : by_cycle) {
    os << "cycle " << cycle << ':';
    for (const ScheduledOp* op : ops) {
      const std::string& label = nodes[op->node].label;
      os << ' ' << (label.empty() ? "op" + std::to_string(op->node) : label)
         << '[' << op->start_ns << '-' << op->finish_ns << ']';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ldpc
