// Clock-budgeted list scheduler.
//
// Given an operator DAG and a target clock period, pack chained operators
// into cycles (operator chaining), inserting pipeline registers at every
// cycle boundary a live value crosses. Initiation interval is 1 — the
// paper's decoder cores accept one block column per cycle — so deeper
// pipelines cost fill/drain latency and register area but not throughput,
// which is exactly the trade Fig. 8 plots.
#pragma once

#include "hls/opgraph.hpp"

namespace ldpc {

struct ScheduleResult {
  int latency_cycles = 1;        ///< pipeline depth (>= 1)
  long long register_bits = 0;   ///< pipeline registers inserted
  double comb_area_um2 = 0.0;    ///< operator area (one instance)
  double critical_path_ns = 0.0; ///< longest intra-cycle chain achieved
};

/// `sequencing_overhead_ns` models FF clk->Q + setup + clock skew; the
/// usable chaining budget per cycle is period - overhead. Throws ldpc::Error
/// if any single operator exceeds the budget (frequency infeasible).
ScheduleResult schedule(const OpGraph& graph, double clock_period_ns,
                        double sequencing_overhead_ns = 0.35);

/// Largest clock frequency (MHz) at which the graph can still be scheduled,
/// i.e. the slowest single operator fits the budget.
double max_schedulable_mhz(const OpGraph& graph,
                           double sequencing_overhead_ns = 0.35);

/// Detailed schedule: the cycle and intra-cycle time window assigned to
/// every operator (same algorithm as schedule(), exposed for inspection).
struct ScheduledOp {
  std::size_t node = 0;
  int cycle = 0;
  double start_ns = 0.0;
  double finish_ns = 0.0;
};

std::vector<ScheduledOp> schedule_detail(const OpGraph& graph,
                                         double clock_period_ns,
                                         double sequencing_overhead_ns = 0.35);

/// Human-readable schedule report:
///   cycle 0: P_read[0.00-1.40] Q=P-R[1.40-1.92]
///   cycle 1: ...
std::string schedule_report(const OpGraph& graph, double clock_period_ns,
                            double sequencing_overhead_ns = 0.35);

}  // namespace ldpc
