#include "hls/opgraph.hpp"

#include <algorithm>

namespace ldpc {

double op_delay_ns(OpKind kind, int width) {
  // Base delays for an 8-bit instance; adders/comparators grow ~log(width).
  const double width_factor =
      width <= 1 ? 0.4 : (0.7 + 0.3 * static_cast<double>(width) / 8.0);
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kSub:          return 0.55 * width_factor;
    case OpKind::kAbs:          return 0.35 * width_factor;
    case OpKind::kCompare:      return 0.45 * width_factor;
    case OpKind::kMux:          return 0.09;
    case OpKind::kXor:          return 0.06;
    case OpKind::kScaleShiftAdd:return 0.50 * width_factor;
    case OpKind::kSramRead:     return 1.40;  // macro access time
    case OpKind::kSramWrite:    return 0.70;  // setup side only
    case OpKind::kShiftStage:   return 0.12;
    case OpKind::kLut:          return 0.95 * width_factor;  // synthesized ROM
    case OpKind::kWire:         return 0.0;
  }
  throw Error("unknown op kind");
}

double op_area_um2(OpKind kind, int width) {
  // NAND2-equivalents per bit, times 1.44 um^2 per gate (65 nm).
  constexpr double kGate = 1.44;
  const double w = static_cast<double>(width);
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kSub:          return 6.0 * w * kGate;
    case OpKind::kAbs:          return 3.5 * w * kGate;
    case OpKind::kCompare:      return 4.5 * w * kGate;
    case OpKind::kMux:          return 1.8 * w * kGate;
    case OpKind::kXor:          return 2.2 * w * kGate;
    case OpKind::kScaleShiftAdd:return 7.0 * w * kGate;
    case OpKind::kSramRead:
    case OpKind::kSramWrite:    return 0.0;  // macro area accounted separately
    case OpKind::kShiftStage:   return 1.8 * w * kGate;
    // A 2^w x w lookup table synthesized to cells: grows fast with width —
    // the reason min-sum hardware beats sum-product hardware.
    case OpKind::kLut:          return 5.5 * w * w * kGate;
    case OpKind::kWire:         return 0.0;
  }
  throw Error("unknown op kind");
}

std::size_t OpGraph::add(OpKind kind, int width, std::vector<std::size_t> deps,
                         std::string label) {
  LDPC_CHECK(width >= 1);
  for (std::size_t d : deps)
    LDPC_CHECK_MSG(d < nodes_.size(), "op dependency " << d << " does not exist yet");
  nodes_.push_back(OpNode{kind, width, std::move(deps), std::move(label)});
  return nodes_.size() - 1;
}

double OpGraph::total_area_um2() const {
  double total = 0.0;
  for (const OpNode& n : nodes_) total += op_area_um2(n.kind, n.width);
  return total;
}

double OpGraph::critical_path_ns() const {
  std::vector<double> finish(nodes_.size(), 0.0);
  double worst = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    double start = 0.0;
    for (std::size_t d : nodes_[i].deps) start = std::max(start, finish[d]);
    finish[i] = start + op_delay_ns(nodes_[i].kind, nodes_[i].width);
    worst = std::max(worst, finish[i]);
  }
  return worst;
}

}  // namespace ldpc
