// Dataflow-graph representation of a datapath, the input to the HLS
// scheduler.
//
// This stands in for the proprietary PICO compiler's internal IR (see
// DESIGN.md's substitution table). Nodes are primitive RTL operators with
// 65 nm delay/area characteristics; edges are data dependencies. The
// scheduler chains operators into clock periods exactly the way an HLS tool
// does when given a target frequency, which is what produces the paper's
// "latency and area increase with clock frequency" behaviour (Fig. 8).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace ldpc {

enum class OpKind {
  kAdd,        ///< ripple/carry-select adder
  kSub,
  kAbs,        ///< conditional negate (two's complement -> magnitude)
  kCompare,    ///< magnitude comparator
  kMux,        ///< 2:1 multiplexer
  kXor,        ///< 1-bit parity / sign xor
  kScaleShiftAdd,  ///< (x>>1)+(x>>2) normalization
  kSramRead,   ///< SRAM macro access (delay dominated)
  kSramWrite,
  kShiftStage, ///< one mux stage of the logarithmic barrel shifter
  kLut,        ///< nonlinear function table (phi(x) for sum-product)
  kWire,       ///< zero-delay connection point (fan-in collector)
};

/// Typical TSMC 65 nm GP standard-cell timing (ns) for a `width`-bit
/// instance of the operator, at nominal corner. Values are calibrated so the
/// paper's datapaths land at the pipeline depths its Fig. 8 implies.
double op_delay_ns(OpKind kind, int width);

/// Combinational area (um^2) of a `width`-bit instance (NAND2-equivalent
/// counts times 1.44 um^2/gate for the 65 nm library).
double op_area_um2(OpKind kind, int width);

struct OpNode {
  OpKind kind;
  int width;                      ///< operand width in bits
  std::vector<std::size_t> deps;  ///< producer node ids
  std::string label;
};

class OpGraph {
 public:
  /// Append a node; dependencies must already exist (topological insert).
  std::size_t add(OpKind kind, int width, std::vector<std::size_t> deps,
                  std::string label = "");

  const std::vector<OpNode>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }

  /// Sum of op areas (un-pipelined, one instance).
  double total_area_um2() const;

  /// Longest combinational path with no pipelining (ns).
  double critical_path_ns() const;

 private:
  std::vector<OpNode> nodes_;
};

}  // namespace ldpc
