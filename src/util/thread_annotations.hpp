// Clang thread-safety capability annotations + an annotated mutex.
//
// The concurrent runtime (src/runtime) and the decode service (src/service)
// document every lock invariant in these attributes so clang's
// -Wthread-safety analysis can prove lock discipline at compile time:
// which members a mutex guards (LDPC_GUARDED_BY), which private helpers may
// only run under a lock (LDPC_REQUIRES), and which public entry points must
// be called lock-free (LDPC_EXCLUDES). scripts/check.sh builds the runtime
// and service libraries with -Werror=thread-safety when a clang toolchain
// is available; under GCC the macros expand to nothing and the annotations
// are plain documentation.
//
// libstdc++'s std::mutex carries no capability attribute, so the analysis
// cannot see through it. ldpc::Mutex wraps std::mutex with the CAPABILITY
// attribute and ldpc::MutexLock is the annotated scoped lock. MutexLock
// deliberately exposes condition-variable waits as plain `wait(cv)` —
// predicate-lambda overloads are analysed as separate functions with an
// empty lock set and generate false positives on every guarded member the
// predicate reads, so callers write explicit `while (!cond) lock.wait(cv);`
// loops instead.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LDPC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LDPC_THREAD_ANNOTATION
#define LDPC_THREAD_ANNOTATION(x)  // not clang: annotations are comments
#endif

#define LDPC_CAPABILITY(x) LDPC_THREAD_ANNOTATION(capability(x))
#define LDPC_SCOPED_CAPABILITY LDPC_THREAD_ANNOTATION(scoped_lockable)
#define LDPC_GUARDED_BY(x) LDPC_THREAD_ANNOTATION(guarded_by(x))
#define LDPC_PT_GUARDED_BY(x) LDPC_THREAD_ANNOTATION(pt_guarded_by(x))
#define LDPC_ACQUIRE(...) \
  LDPC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LDPC_RELEASE(...) \
  LDPC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LDPC_TRY_ACQUIRE(...) \
  LDPC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define LDPC_REQUIRES(...) \
  LDPC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define LDPC_EXCLUDES(...) LDPC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define LDPC_ACQUIRED_BEFORE(...) \
  LDPC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define LDPC_ACQUIRED_AFTER(...) \
  LDPC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define LDPC_RETURN_CAPABILITY(x) LDPC_THREAD_ANNOTATION(lock_returned(x))
#define LDPC_NO_THREAD_SAFETY_ANALYSIS \
  LDPC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ldpc {

/// std::mutex with the `capability` attribute the analysis needs. The
/// untyped escape hatch `native()` exists only for std::scoped_lock over
/// two mutexes (deadlock-avoidance ordering) — callers using it must carry
/// their own LDPC_ACQUIRE/LDPC_RELEASE annotations.
class LDPC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LDPC_ACQUIRE() { mutex_.lock(); }
  void unlock() LDPC_RELEASE() { mutex_.unlock(); }
  bool try_lock() LDPC_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// Annotated scoped lock over ldpc::Mutex with condition-variable support.
/// Wait primitives only — no predicate overloads (see file comment); the
/// lock is always held again when a wait returns, which is exactly what the
/// scoped-capability model assumes.
class LDPC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) LDPC_ACQUIRE(mutex)
      : lock_(mutex.native()) {}
  ~MutexLock() LDPC_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Block until notified. Atomically releases and re-acquires the mutex;
  /// the capability is held across the call from the analysis's viewpoint.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

  /// Timed wait; std::cv_status::timeout when the deadline passed first.
  template <class Clock, class Duration>
  std::cv_status wait_until(
      std::condition_variable& cv,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv.wait_until(lock_, deadline);
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace ldpc
