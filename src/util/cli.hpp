// Tiny command-line flag parser for the example binaries.
//
// Supports `--name value` and `--name=value`; unknown flags are an error so
// typos do not silently fall back to defaults. Flags listed as boolean may
// also appear bare (`--all-codes`), in which case they take the value "1".
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ldpc {

class CliArgs {
 public:
  /// Parses argv. `allowed` lists every recognised flag name (without the
  /// leading dashes); throws ldpc::Error for unknown or malformed flags.
  /// Flags also listed in `boolean_flags` may omit their value when the
  /// next token is another flag (or argv ends); they then read as "1".
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& allowed,
          const std::vector<std::string>& boolean_flags = {});

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  long get_int(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ldpc
