// Packed bit vector used for codewords, hard decisions and syndromes.
//
// std::vector<bool> is avoided per the Core Guidelines (proxy references,
// no data()); this class stores bits in 64-bit words and exposes the word
// view so parity computations can XOR whole words at a time.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace ldpc {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n_bits) { resize(n_bits); }

  void resize(std::size_t n_bits) {
    n_bits_ = n_bits;
    words_.assign((n_bits + 63) / 64, 0);
  }

  std::size_t size() const { return n_bits_; }
  bool empty() const { return n_bits_ == 0; }

  bool get(std::size_t i) const {
    LDPC_CHECK(i < n_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool value) {
    LDPC_CHECK(i < n_bits_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void flip(std::size_t i) {
    LDPC_CHECK(i < n_bits_);
    words_[i >> 6] ^= 1ULL << (i & 63);
  }

  void clear_all() { std::fill(words_.begin(), words_.end(), 0); }

  /// XOR-accumulate another vector of identical length.
  void xor_with(const BitVec& other) {
    LDPC_CHECK(other.n_bits_ == n_bits_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
  }

  /// Number of set bits.
  std::size_t popcount() const {
    std::size_t total = 0;
    for (std::uint64_t w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
  }

  /// True iff every bit is zero (e.g. a satisfied syndrome).
  bool all_zero() const {
    for (std::uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  /// Hamming distance to another vector of identical length.
  std::size_t hamming_distance(const BitVec& other) const {
    LDPC_CHECK(other.n_bits_ == n_bits_);
    std::size_t total = 0;
    for (std::size_t w = 0; w < words_.size(); ++w)
      total += static_cast<std::size_t>(__builtin_popcountll(words_[w] ^ other.words_[w]));
    return total;
  }

  bool operator==(const BitVec& other) const {
    return n_bits_ == other.n_bits_ && words_ == other.words_;
  }

  std::span<const std::uint64_t> words() const { return words_; }

  /// Overwrite word `w` (bits [64w, 64w+63]) wholesale — the fast path for
  /// producers that assemble hard decisions 64 at a time instead of calling
  /// set() per bit. Bits beyond size() are masked off so the "padding bits
  /// are zero" invariant popcount/all_zero/== rely on still holds.
  void set_word(std::size_t w, std::uint64_t value) {
    LDPC_CHECK(w < words_.size());
    const std::size_t tail = n_bits_ - (w << 6);
    if (tail < 64) value &= (1ULL << tail) - 1ULL;
    words_[w] = value;
  }

 private:
  std::size_t n_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ldpc
