#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace ldpc {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& allowed,
                 const std::vector<std::string>& boolean_flags) {
  const auto is_boolean = [&](const std::string& name) {
    return std::find(boolean_flags.begin(), boolean_flags.end(), name) !=
           boolean_flags.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    LDPC_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --flag, got: " << arg);
    arg = arg.substr(2);
    std::string name, value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      const bool next_is_value =
          i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0;
      if (is_boolean(name) && !next_is_value) {
        value = "1";  // bare boolean flag
      } else {
        LDPC_CHECK_MSG(i + 1 < argc,
                       "flag --" << name << " is missing a value");
        value = argv[++i];
      }
    }
    LDPC_CHECK_MSG(std::find(allowed.begin(), allowed.end(), name) != allowed.end(),
                   "unknown flag --" << name);
    values_[name] = value;
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long CliArgs::get_int(const std::string& name, long fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  LDPC_CHECK_MSG(end && *end == '\0', "flag --" << name << " expects an integer, got: " << it->second);
  return v;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  LDPC_CHECK_MSG(end && *end == '\0', "flag --" << name << " expects a number, got: " << it->second);
  return v;
}

}  // namespace ldpc
