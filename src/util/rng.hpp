// Deterministic, fast pseudo-random number generation.
//
// Monte-Carlo BER simulation consumes an enormous number of random draws, so
// we use xoshiro256++ (Blackman & Vigna) instead of std::mt19937: ~4x faster,
// 256-bit state, and trivially seedable per worker thread via splitmix64 so
// parallel runs are reproducible regardless of thread scheduling.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace ldpc {

/// splitmix64 — used to expand a single 64-bit seed into xoshiro state.
/// Public because tests and workload generators also want a tiny stateless
/// mixer.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform_int(std::uint64_t bound) {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal draw (Marsaglia polar method, caches the spare value).
  double gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Fair coin flip.
  bool coin() { return ((*this)() >> 63) != 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace ldpc
