// Console table formatter used by the benchmark harnesses so that every
// regenerated paper table/figure prints with aligned, labelled columns.
#pragma once

#include <string>
#include <vector>

namespace ldpc {

/// Builds a monospace table:
///   Table II: comparison with existing decoders
///   +-----------+--------+
///   | Metric    | Value  |
///   +-----------+--------+
/// Cells are strings; helpers format numbers with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);
  /// Horizontal separator between row groups.
  void add_rule();

  std::string str() const;

  /// Format helpers.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);
  static std::string sci(double v, int precision = 2);
  static std::string percent(double fraction, int precision = 1);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace ldpc
