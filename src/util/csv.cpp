#include "util/csv.hpp"

#include "util/check.hpp"

namespace ldpc {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  LDPC_CHECK_MSG(out_.good(), "cannot open CSV output file: " << path);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace ldpc
