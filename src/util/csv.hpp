// Minimal CSV writer so benchmark harnesses can emit machine-readable series
// next to the human-readable tables (e.g. to re-plot Fig. 8 externally).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ldpc {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws ldpc::Error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace ldpc
