// Streaming statistics accumulators for benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ldpc {

/// Welford single-pass mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile of an ascending-sorted sample set with linear interpolation
/// between order statistics (the "R-7" / NumPy default definition):
/// q in [0, 1] maps onto rank q * (n - 1), fractional ranks interpolate
/// between the two neighbours. Distinct from the previous ceil-rank rule,
/// which returned the max for p50 of two samples. Empty input returns 0.
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Fixed-bin histogram over [lo, hi); out-of-range samples land in the edge
/// bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const { return bin_lo(i + 1); }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ldpc
