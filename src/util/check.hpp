// Error handling primitives shared by every pico_ldpc library.
//
// The libraries follow the C++ Core Guidelines convention: exceptions for
// errors that the caller may recover from (bad configuration, malformed
// code tables), and assertions for programmer errors on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ldpc {

/// Exception thrown for violated preconditions and invalid configuration.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "LDPC_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace ldpc

/// Precondition / invariant check that is always on (never compiled out):
/// code-table and configuration validation is not performance critical and
/// silent corruption of a decoder is far worse than a branch.
#define LDPC_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr))                                                             \
      ::ldpc::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");    \
  } while (false)

/// Same as LDPC_CHECK but with a streamed message:
///   LDPC_CHECK_MSG(z > 0, "expansion factor must be positive, got " << z);
#define LDPC_CHECK_MSG(expr, stream_expr)                                    \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream os_;                                                \
      os_ << stream_expr;                                                    \
      ::ldpc::detail::throw_check_failure(#expr, __FILE__, __LINE__,         \
                                          os_.str());                        \
    }                                                                        \
  } while (false)

/// Debug-only check: compiled out under NDEBUG. For invariants on paths
/// where the release build deliberately tolerates the condition (e.g. a
/// status-returning submit whose caller is expected to handle rejection)
/// but a debug build should fail loudly on the programming error.
#ifdef NDEBUG
#define LDPC_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define LDPC_DCHECK(expr) LDPC_CHECK(expr)
#endif
