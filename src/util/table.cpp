#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ldpc {

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_rule() { rows_.push_back(Row{{}, true}); }

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string TextTable::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string TextTable::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::str() const {
  // Column widths over header + all rows.
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const Row& r : rows_)
    if (!r.rule) widen(r.cells);

  std::ostringstream os;
  auto hline = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << ' ' << c << std::string(widths[i] - c.size(), ' ') << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  hline();
  if (!header_.empty()) {
    emit(header_);
    hline();
  }
  for (const Row& r : rows_) {
    if (r.rule)
      hline();
    else
      emit(r.cells);
  }
  hline();
  return os.str();
}

}  // namespace ldpc
