#include "util/stats.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ldpc {

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  LDPC_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1], got " << q);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  LDPC_CHECK_MSG(hi > lo, "histogram range is empty: [" << lo << ", " << hi << ")");
  LDPC_CHECK(bins > 0);
}

void Histogram::add(double x) {
  const double fraction = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(fraction * static_cast<double>(counts_.size()));
  if (idx < 0) idx = 0;
  if (idx >= static_cast<long>(counts_.size()))
    idx = static_cast<long>(counts_.size()) - 1;
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

}  // namespace ldpc
