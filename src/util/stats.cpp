#include "util/stats.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ldpc {

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  LDPC_CHECK_MSG(hi > lo, "histogram range is empty: [" << lo << ", " << hi << ")");
  LDPC_CHECK(bins > 0);
}

void Histogram::add(double x) {
  const double fraction = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(fraction * static_cast<double>(counts_.size()));
  if (idx < 0) idx = 0;
  if (idx >= static_cast<long>(counts_.size()))
    idx = static_cast<long>(counts_.size()) - 1;
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

}  // namespace ldpc
