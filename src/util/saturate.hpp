// Saturating fixed-width integer arithmetic.
//
// The paper's decoder carries 8-bit two's-complement messages; hardware
// adders saturate instead of wrapping. These helpers are the single source
// of truth for that behaviour — both the algorithmic fixed-point decoder
// (src/core) and the cycle-accurate datapaths (src/arch) call them, which is
// what makes the bit-exactness cross-checks in the tests meaningful.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace ldpc {

// Supported message widths. Below 2 bits a signed format carries no
// magnitude; at 32 and above `1 << (bits - 1)` is undefined behaviour on a
// 32-bit int. The guard throws at runtime and fails compilation when an
// out-of-range width reaches a constant-evaluated context.
constexpr int kMinFixedBits = 2;
constexpr int kMaxFixedBits = 31;

/// Inclusive two's-complement bounds of a `bits`-wide signed integer.
/// (Plain LDPC_CHECK, not _MSG: the streamed variant declares an
/// ostringstream local, which C++20 rejects inside constexpr functions.)
constexpr std::int32_t fixed_max(int bits) {
  LDPC_CHECK(bits >= kMinFixedBits && bits <= kMaxFixedBits);
  return (1 << (bits - 1)) - 1;
}
constexpr std::int32_t fixed_min(int bits) {
  LDPC_CHECK(bits >= kMinFixedBits && bits <= kMaxFixedBits);
  return -(1 << (bits - 1));
}

/// Clamp a wide intermediate value into `bits`-wide signed range.
constexpr std::int32_t sat_clamp(std::int64_t v, int bits) {
  const std::int32_t hi = fixed_max(bits);
  const std::int32_t lo = fixed_min(bits);
  if (v > hi) return hi;
  if (v < lo) return lo;
  return static_cast<std::int32_t>(v);
}

/// Saturating add of two values already inside `bits`-wide range.
constexpr std::int32_t sat_add(std::int32_t a, std::int32_t b, int bits) {
  return sat_clamp(static_cast<std::int64_t>(a) + b, bits);
}

/// Saturating subtract.
constexpr std::int32_t sat_sub(std::int32_t a, std::int32_t b, int bits) {
  return sat_clamp(static_cast<std::int64_t>(a) - b, bits);
}

// Counted variants: identical arithmetic, but clipping events increment the
// caller's counter. Saturation is the first symptom of a decoder operating
// outside its designed dynamic range (too-hot channel LLRs, injected faults,
// too-narrow quantization), so the decoders surface these through their
// stats machinery when DecoderOptions::count_saturation is set.

constexpr std::int32_t sat_clamp_counted(std::int64_t v, int bits,
                                         long long& clips) {
  const std::int32_t r = sat_clamp(v, bits);
  if (r != v) ++clips;
  return r;
}

constexpr std::int32_t sat_add_counted(std::int32_t a, std::int32_t b, int bits,
                                       long long& clips) {
  return sat_clamp_counted(static_cast<std::int64_t>(a) + b, bits, clips);
}

constexpr std::int32_t sat_sub_counted(std::int32_t a, std::int32_t b, int bits,
                                       long long& clips) {
  return sat_clamp_counted(static_cast<std::int64_t>(a) - b, bits, clips);
}

/// The paper's 0.75 scaling, computed exactly the way a shift-add datapath
/// does it: (|v| >> 1) + (|v| >> 2), truncating, sign re-applied. Using the
/// magnitude keeps the operation symmetric around zero, matching the
/// sign-magnitude min-sum datapath in the decoder cores.
constexpr std::int32_t scale_three_quarters(std::int32_t v) {
  const std::int32_t mag = v < 0 ? -v : v;
  const std::int32_t scaled = (mag >> 1) + (mag >> 2);
  return v < 0 ? -scaled : scaled;
}

}  // namespace ldpc
