// Over-aligned heap allocation for SIMD lane buffers.
//
// The vectorized layered decoder (src/core/simd) streams int16 message
// lanes through 32-byte vector loads; keeping every scratch buffer on a
// 64-byte boundary puts each z-row chunk on its own cache line and lets
// the kernels use aligned accesses for the full padded stride. The
// allocator is a thin wrapper over C++17 aligned operator new so it
// composes with std::vector (value-initialization, growth, swap) instead
// of hand-rolled malloc bookkeeping.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace ldpc {

/// Cache-line alignment used by every SIMD scratch buffer. 64 bytes covers
/// AVX-512 should a wider tier ever be added; AVX2 needs 32.
inline constexpr std::size_t kSimdAlignment = 64;

template <typename T, std::size_t Alignment = kSimdAlignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment below natural alignment");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be 2^k");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// std::vector whose storage starts on a kSimdAlignment boundary.
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

}  // namespace ldpc
