// ldpc-lint — static schedule & hazard analyzer for the HLS op-graphs and
// the two-layer pipeline.
//
//   build/src/analysis/ldpc-lint                      # lint everything bundled
//   build/src/analysis/ldpc-lint --code wimax-1/2 --reorder 1 --verbose 1
//   build/src/analysis/ldpc-lint --selftest-defect cycle   # must exit nonzero
//
// (Flag values are required by the shared CliArgs parser; any value enables
// the boolean flags, e.g. --reorder 1.)
//
// Passes (see docs/static_analysis.md for the mapping to the paper):
//   op-graphs   dangling edges, combinational cycles, zero widths,
//               clock-budget-infeasible operators, dead values
//   schedules   independent re-verification of the list scheduler's output
//               (dependency order, chaining, stage clock-budget overflow)
//               plus a register lifetime/pressure report (--verbose)
//   pipeline    layer-structure hazards (degenerate layer pairs, duplicate
//               columns) and the exact core-1 stall count the scoreboard
//               will measure, per code and parallelism
//   --reorder   layer-permutation search minimizing predicted stalls
//
// Exit status: 0 when every pass is clean (warnings allowed), 1 when any
// error-severity finding exists, 2 on bad usage.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/hazard_lint.hpp"
#include "analysis/layer_reorder.hpp"
#include "analysis/opgraph_lint.hpp"
#include "analysis/pipeline_model.hpp"
#include "analysis/verify_cli.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

int g_errors = 0;

void report(const std::string& context, const std::vector<LintFinding>& findings) {
  for (const LintFinding& f : findings) {
    std::printf("%s: %s: [%s] %s\n", context.c_str(),
                f.severity == LintSeverity::kError ? "error" : "warning",
                f.pass.c_str(), f.message.c_str());
    if (f.severity == LintSeverity::kError) ++g_errors;
  }
}

// ------------------------------------------------------------- op-graphs ----

void lint_graph(const std::string& name, const OpGraph& graph, double clock_mhz,
                bool verbose) {
  const double period_ns = 1000.0 / clock_mhz;
  const auto structural = lint_opgraph(graph, period_ns);
  report(name, structural);
  if (lint_has_errors(structural)) return;

  const auto detail = schedule_detail(graph, period_ns);
  report(name, lint_schedule(graph.nodes(), detail, period_ns));

  if (verbose) {
    const auto pressure = register_pressure(graph.nodes(), detail);
    std::printf("%s: %zu ops, depth %zu, register pressure peak %lld b / "
                "total %lld b\n",
                name.c_str(), graph.size(), pressure.live_bits.size() + 1,
                pressure.peak_bits, pressure.total_register_bits);
    std::printf("%s", schedule_report(graph, period_ns).c_str());
  }
}

void lint_opgraphs(double clock_mhz, int z, bool verbose) {
  const PicoCompiler pico;
  lint_graph("core1", pico.build_core1_graph(), clock_mhz, verbose);
  lint_graph("core2", pico.build_core2_graph(), clock_mhz, verbose);
  lint_graph("bp-core1", pico.build_bp_core1_graph(), clock_mhz, verbose);
  lint_graph("bp-core2", pico.build_bp_core2_graph(), clock_mhz, verbose);
  lint_graph("shifter", pico.build_shifter_graph(z), clock_mhz, verbose);
}

// -------------------------------------------------------------- pipeline ----

struct NamedCode {
  std::string name;
  QCLdpcCode code;
};

std::vector<NamedCode> select_codes(const std::string& which, int z) {
  std::vector<NamedCode> out;
  for (WimaxRate rate : all_wimax_rates()) {
    const std::string name = wimax_rate_name(rate);
    if (which == "all" || which == name)
      out.push_back(NamedCode{name + " z" + std::to_string(z),
                              make_wimax_code(rate, z)});
  }
  if (which == "all" || which == "wifi-648")
    out.push_back(NamedCode{"wifi-648", make_wifi_648_half_rate()});
  if (which == "all" || which == "wifi-1944")
    out.push_back(NamedCode{"wifi-1944", make_wifi_1944_half_rate()});
  if (out.empty())
    throw Error("unknown --code '" + which +
                "' (use all, wimax-1/2 ... wimax-5/6, wifi-648, wifi-1944)");
  return out;
}

std::vector<int> parallelism_sweep(int z) {
  std::vector<int> out;
  for (int div : {1, 2, 4})
    if (z % div == 0) out.push_back(z / div);
  return out;
}

void analyze_code(const NamedCode& nc, double clock_mhz,
                  ColumnOrderPolicy policy, std::size_t iterations,
                  bool reorder, TextTable& table) {
  report(nc.name, lint_layer_hazards(nc.code));

  const PicoCompiler pico;
  for (int p : parallelism_sweep(nc.code.z())) {
    const auto est = pico.compile(nc.code, ArchKind::kTwoLayerPipelined,
                                  HardwareTarget{clock_mhz, p});
    const auto model = make_pipeline_model(nc.code, est, policy);
    const auto pred = predict_timing(model, iterations);
    table.add_row({nc.name, TextTable::integer(nc.code.z()),
                   TextTable::integer(p),
                   TextTable::integer(pred.core1_stall_cycles),
                   TextTable::num(static_cast<double>(pred.core1_stall_cycles) /
                                      static_cast<double>(iterations),
                                  1),
                   TextTable::integer(pred.first_iteration_cycles),
                   TextTable::integer(pred.cycles)});

    if (reorder && p == nc.code.z()) {
      const auto opt =
          optimize_layer_order(nc.code, est, policy, iterations);
      std::printf("%s: reorder: stalls %lld -> %lld, cycles %lld -> %lld "
                  "(%zu evaluations), permutation:",
                  nc.name.c_str(), opt.natural_stalls, opt.best_stalls,
                  opt.natural_cycles, opt.best_cycles, opt.evaluations);
      for (std::size_t l : opt.permutation) std::printf(" %zu", l);
      std::printf("\n");
    }
  }
}

// ------------------------------------------------------- defect selftests ----

/// Build one known-bad input and lint it; the analyzer proves itself by
/// returning nonzero (ctest runs these with WILL_FAIL).
int run_defect(const std::string& kind) {
  std::vector<LintFinding> findings;
  const double period_ns = 2.5;
  if (kind == "cycle") {
    // a -> b -> c -> a: combinational loop no register can break.
    std::vector<OpNode> nodes;
    nodes.push_back(OpNode{OpKind::kAdd, 8, {2}, "a"});
    nodes.push_back(OpNode{OpKind::kAdd, 8, {0}, "b"});
    nodes.push_back(OpNode{OpKind::kAdd, 8, {1}, "c"});
    findings = lint_opgraph(nodes, period_ns);
  } else if (kind == "dangling") {
    std::vector<OpNode> nodes;
    nodes.push_back(OpNode{OpKind::kAdd, 8, {}, "a"});
    nodes.push_back(OpNode{OpKind::kMux, 8, {0, 7}, "b"});  // op7 missing
    findings = lint_opgraph(nodes, period_ns);
  } else if (kind == "budget") {
    // An SRAM access (1.4 ns) can never fit a 1.5 ns clock period after
    // the 0.35 ns sequencing overhead.
    std::vector<OpNode> nodes;
    nodes.push_back(OpNode{OpKind::kSramRead, 8, {}, "P_read"});
    findings = lint_opgraph(nodes, 1.5);
  } else if (kind == "schedule") {
    // Hand-corrupted schedule: chained pair declared to finish past budget.
    std::vector<OpNode> nodes;
    nodes.push_back(OpNode{OpKind::kSramRead, 8, {}, "P_read"});
    nodes.push_back(OpNode{OpKind::kAdd, 8, {0}, "Q=P-R"});
    std::vector<ScheduledOp> bad{ScheduledOp{0, 0, 0.0, 1.4},
                                 ScheduledOp{1, 0, 1.4, 3.0}};
    findings = lint_schedule(nodes, bad, period_ns);
  } else if (kind == "layer-pair") {
    // Two layers with identical support: every read of layer 1 is pending
    // from layer 0 — the pipeline degenerates.
    findings = lint_layer_hazards(LayerSupports{{0, 1, 3}, {0, 1, 3}}, 4);
  } else if (kind == "duplicate-column") {
    findings = lint_layer_hazards(LayerSupports{{0, 1, 1}, {2, 3}}, 4);
  } else {
    std::fprintf(stderr, "unknown defect '%s'\n", kind.c_str());
    return 2;
  }
  report("selftest-" + kind, findings);
  return lint_has_errors(findings) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) try {
  // `ldpc-lint verify ...` forwards to the range verifier (also built as
  // the standalone ldpc-verify binary).
  if (argc > 1 && std::string(argv[1]) == "verify")
    return run_verify_cli(argc - 1, argv + 1);

  const CliArgs args(argc, argv,
                     {"clock", "code", "z", "order", "iterations", "reorder",
                      "verbose", "selftest-defect"});
  if (args.has("selftest-defect"))
    return run_defect(args.get("selftest-defect", ""));

  const double clock_mhz = args.get_double("clock", 400.0);
  const int z = static_cast<int>(args.get_int("z", 96));
  const auto iterations =
      static_cast<std::size_t>(args.get_int("iterations", 10));
  const std::string order = args.get("order", "serial");
  if (order != "serial" && order != "hazard")
    throw Error("--order must be 'serial' or 'hazard'");
  const ColumnOrderPolicy policy = order == "hazard"
                                       ? ColumnOrderPolicy::kHazardAware
                                       : ColumnOrderPolicy::kBlockSerial;

  lint_opgraphs(clock_mhz, z, args.has("verbose"));

  TextTable table("Predicted two-layer pipeline stalls (" + order +
                  " column order, " + std::to_string(iterations) +
                  " iterations, " + TextTable::num(clock_mhz, 0) + " MHz)");
  table.set_header({"code", "z", "P", "stalls", "stalls/iter", "cyc/iter1",
                    "cycles"});
  for (const NamedCode& nc : select_codes(args.get("code", "all"), z))
    analyze_code(nc, clock_mhz, policy, iterations, args.has("reorder"), table);
  std::printf("%s", table.str().c_str());

  if (g_errors > 0) {
    std::printf("ldpc-lint: %d error(s)\n", g_errors);
    return 1;
  }
  std::printf("ldpc-lint: clean\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "ldpc-lint: %s\n", e.what());
  return 2;
}
