#include "analysis/opgraph_lint.hpp"

#include <algorithm>
#include <sstream>

namespace ldpc {

bool lint_has_errors(const std::vector<LintFinding>& findings) {
  return std::any_of(findings.begin(), findings.end(), [](const LintFinding& f) {
    return f.severity == LintSeverity::kError;
  });
}

std::string format_findings(const std::vector<LintFinding>& findings) {
  std::ostringstream os;
  for (const LintFinding& f : findings)
    os << (f.severity == LintSeverity::kError ? "error" : "warning") << " ["
       << f.pass << "] " << f.message << '\n';
  return os.str();
}

std::string lint_node_name(const std::vector<OpNode>& nodes, std::size_t i) {
  if (i < nodes.size() && !nodes[i].label.empty())
    return nodes[i].label + " (op" + std::to_string(i) + ")";
  return "op" + std::to_string(i);
}

namespace {

void find_cycles(const std::vector<OpNode>& nodes,
                 std::vector<LintFinding>& out) {
  // Iterative three-color DFS over dependency edges (consumer -> producer).
  // Dangling deps are skipped here; the dangling-edge pass reports them.
  enum : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<std::uint8_t> color(nodes.size(), kWhite);
  for (std::size_t root = 0; root < nodes.size(); ++root) {
    if (color[root] != kWhite) continue;
    // Stack of (node, next dep index to visit).
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    color[root] = kGrey;
    while (!stack.empty()) {
      auto& [node, dep_idx] = stack.back();
      if (dep_idx < nodes[node].deps.size()) {
        const std::size_t dep = nodes[node].deps[dep_idx++];
        if (dep >= nodes.size()) continue;  // dangling, reported elsewhere
        if (color[dep] == kGrey) {
          out.push_back(LintFinding{
              LintSeverity::kError, "combinational-cycle",
              "dependency cycle through " + lint_node_name(nodes, dep) +
                  " reached from " + lint_node_name(nodes, node) +
                  " — no register boundary can break it"});
          return;  // one cycle report is enough to fail the graph
        }
        if (color[dep] == kWhite) {
          color[dep] = kGrey;
          stack.emplace_back(dep, 0);
        }
      } else {
        color[node] = kBlack;
        stack.pop_back();
      }
    }
  }
}

}  // namespace

std::vector<LintFinding> lint_opgraph(const std::vector<OpNode>& nodes,
                                      double clock_period_ns,
                                      double sequencing_overhead_ns) {
  std::vector<LintFinding> out;
  if (nodes.empty()) {
    out.push_back(LintFinding{LintSeverity::kError, "empty-graph",
                              "operator graph has no nodes"});
    return out;
  }
  if (clock_period_ns <= sequencing_overhead_ns) {
    std::ostringstream os;
    os << "clock period " << clock_period_ns
       << " ns leaves no chaining budget after " << sequencing_overhead_ns
       << " ns sequencing overhead";
    out.push_back(LintFinding{LintSeverity::kError, "clock-budget", os.str()});
    return out;
  }
  const double budget = clock_period_ns - sequencing_overhead_ns;

  std::vector<bool> consumed(nodes.size(), false);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const OpNode& n = nodes[i];
    if (n.width < 1)
      out.push_back(LintFinding{LintSeverity::kError, "zero-width",
                                lint_node_name(nodes, i) + " has width " +
                                    std::to_string(n.width)});
    for (std::size_t d : n.deps) {
      if (d >= nodes.size()) {
        out.push_back(LintFinding{
            LintSeverity::kError, "dangling-edge",
            lint_node_name(nodes, i) + " depends on nonexistent op" +
                std::to_string(d) + " (graph has " +
                std::to_string(nodes.size()) + " nodes)"});
      } else {
        consumed[d] = true;
      }
    }
    if (n.width >= 1) {
      const double delay = op_delay_ns(n.kind, n.width);
      if (delay > budget) {
        std::ostringstream os;
        os << lint_node_name(nodes, i) << " needs " << delay
           << " ns but the chaining budget at " << clock_period_ns
           << " ns clock is " << budget << " ns — frequency infeasible";
        out.push_back(
            LintFinding{LintSeverity::kError, "unschedulable-op", os.str()});
      }
    }
  }

  find_cycles(nodes, out);

  // Dead values: computed, never consumed, and neither a memory side effect
  // nor the graph's output (by convention the last node).
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    if (consumed[i]) continue;
    if (nodes[i].kind == OpKind::kSramWrite) continue;
    out.push_back(LintFinding{LintSeverity::kWarning, "dead-op",
                              lint_node_name(nodes, i) +
                                  " is computed but never consumed"});
  }
  return out;
}

std::vector<LintFinding> lint_schedule(const std::vector<OpNode>& nodes,
                                       const std::vector<ScheduledOp>& schedule,
                                       double clock_period_ns,
                                       double sequencing_overhead_ns) {
  constexpr double kEps = 1e-9;
  std::vector<LintFinding> out;
  const double budget = clock_period_ns - sequencing_overhead_ns;

  std::vector<int> slot_of(nodes.size(), -1);
  for (std::size_t s = 0; s < schedule.size(); ++s) {
    const ScheduledOp& op = schedule[s];
    if (op.node >= nodes.size()) {
      out.push_back(LintFinding{LintSeverity::kError, "schedule-unknown-op",
                                "schedule entry " + std::to_string(s) +
                                    " refers to nonexistent op" +
                                    std::to_string(op.node)});
      continue;
    }
    if (slot_of[op.node] >= 0)
      out.push_back(LintFinding{LintSeverity::kError, "schedule-duplicate",
                                lint_node_name(nodes, op.node) +
                                    " is scheduled more than once"});
    slot_of[op.node] = static_cast<int>(s);
  }
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (slot_of[i] < 0)
      out.push_back(LintFinding{LintSeverity::kError, "unscheduled-op",
                                lint_node_name(nodes, i) +
                                    " never received a cycle assignment"});
  if (lint_has_errors(out)) return out;

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const ScheduledOp& op = schedule[static_cast<std::size_t>(slot_of[i])];
    const double delay = op_delay_ns(nodes[i].kind, nodes[i].width);
    if (op.cycle < 0 || op.start_ns < -kEps ||
        op.finish_ns < op.start_ns + delay - kEps)
      out.push_back(LintFinding{
          LintSeverity::kError, "schedule-window",
          lint_node_name(nodes, i) + " has an inconsistent time window"});
    if (op.finish_ns > budget + kEps) {
      std::ostringstream os;
      os << "stage clock-budget overflow: " << lint_node_name(nodes, i)
         << " finishes at " << op.finish_ns << " ns in cycle " << op.cycle
         << " but the budget is " << budget << " ns";
      out.push_back(
          LintFinding{LintSeverity::kError, "stage-budget-overflow", os.str()});
    }
    for (std::size_t d : nodes[i].deps) {
      const ScheduledOp& dep = schedule[static_cast<std::size_t>(slot_of[d])];
      if (dep.cycle > op.cycle) {
        out.push_back(LintFinding{
            LintSeverity::kError, "schedule-dependency-order",
            lint_node_name(nodes, i) + " runs in cycle " +
                std::to_string(op.cycle) + " before its producer " +
                lint_node_name(nodes, d) + " (cycle " +
                std::to_string(dep.cycle) + ")"});
      } else if (dep.cycle == op.cycle && dep.finish_ns > op.start_ns + kEps) {
        out.push_back(LintFinding{
            LintSeverity::kError, "schedule-chaining",
            lint_node_name(nodes, i) + " starts before same-cycle producer " +
                lint_node_name(nodes, d) + " finishes"});
      }
    }
  }
  return out;
}

RegisterPressure register_pressure(const std::vector<OpNode>& nodes,
                                   const std::vector<ScheduledOp>& schedule) {
  LDPC_CHECK(schedule.size() == nodes.size());
  RegisterPressure out;
  int depth = 0;
  for (const ScheduledOp& op : schedule) depth = std::max(depth, op.cycle + 1);
  if (depth <= 1) return out;
  out.live_bits.assign(static_cast<std::size_t>(depth - 1), 0);

  std::vector<int> cycle_of(nodes.size(), 0);
  for (const ScheduledOp& op : schedule) cycle_of[op.node] = op.cycle;
  std::vector<int> last_use(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t d : nodes[i].deps)
      last_use[d] = std::max(last_use[d], cycle_of[i]);

  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (int b = cycle_of[i]; b < last_use[i]; ++b)
      out.live_bits[static_cast<std::size_t>(b)] += nodes[i].width;

  for (long long bits : out.live_bits) {
    out.peak_bits = std::max(out.peak_bits, bits);
    out.total_register_bits += bits;
  }
  return out;
}

}  // namespace ldpc
