#include "analysis/hazard_lint.hpp"

#include <algorithm>
#include <string>

namespace ldpc {

std::vector<LayerOverlap> consecutive_overlaps(const LayerSupports& supports) {
  const std::size_t L = supports.size();
  std::vector<LayerOverlap> out;
  out.reserve(L);
  for (std::size_t l = 0; l < L; ++l) {
    LayerOverlap ov;
    ov.from = l;
    ov.to = (l + 1) % L;
    const auto& prev = supports[ov.from];
    ov.subset = !supports[ov.to].empty();
    for (std::uint32_t col : supports[ov.to]) {
      if (std::find(prev.begin(), prev.end(), col) != prev.end())
        ov.shared_cols.push_back(col);
      else
        ov.subset = false;
    }
    out.push_back(std::move(ov));
  }
  return out;
}

std::vector<LintFinding> lint_layer_hazards(const LayerSupports& supports,
                                            std::size_t block_cols) {
  std::vector<LintFinding> out;
  if (supports.empty()) {
    out.push_back(LintFinding{LintSeverity::kError, "empty-schedule",
                              "code has no layers"});
    return out;
  }

  std::vector<std::size_t> col_degree(block_cols, 0);
  for (std::size_t l = 0; l < supports.size(); ++l) {
    std::vector<std::uint32_t> seen;
    for (std::uint32_t col : supports[l]) {
      if (col >= block_cols) {
        out.push_back(LintFinding{
            LintSeverity::kError, "column-out-of-range",
            "layer " + std::to_string(l) + " reads block column " +
                std::to_string(col) + " but the code has only " +
                std::to_string(block_cols) + " columns"});
        continue;
      }
      if (std::find(seen.begin(), seen.end(), col) != seen.end())
        out.push_back(LintFinding{
            LintSeverity::kError, "duplicate-column",
            "layer " + std::to_string(l) + " reads block column " +
                std::to_string(col) +
                " twice — the scoreboard bit would be set while already "
                "pending and core 1 deadlocks on its own write"});
      seen.push_back(col);
      ++col_degree[col];
    }
  }
  if (lint_has_errors(out)) return out;  // overlap analysis needs sane inputs

  for (const LayerOverlap& ov : consecutive_overlaps(supports)) {
    if (!ov.subset) continue;
    out.push_back(LintFinding{
        LintSeverity::kError, "degenerate-layer-pair",
        "every block column layer " + std::to_string(ov.to) +
            " reads is written by layer " + std::to_string(ov.from) +
            " (" + std::to_string(ov.shared_cols.size()) +
            " shared columns) — the two-layer pipeline degenerates to the "
            "per-layer schedule"});
  }

  for (std::size_t c = 0; c < block_cols; ++c)
    if (col_degree[c] == 0)
      out.push_back(LintFinding{LintSeverity::kWarning, "idle-column",
                                "block column " + std::to_string(c) +
                                    " is touched by no layer"});
  return out;
}

}  // namespace ldpc
