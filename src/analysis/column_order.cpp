#include "analysis/column_order.hpp"

#include <algorithm>

namespace ldpc {

LayerSupports layer_supports(const QCLdpcCode& code) {
  LayerSupports out(code.num_layers());
  for (std::size_t l = 0; l < code.num_layers(); ++l) {
    const auto& layer = code.layers()[l];
    out[l].reserve(layer.size());
    for (const auto& blk : layer) out[l].push_back(blk.block_col);
  }
  return out;
}

std::vector<std::vector<std::size_t>> make_column_order(
    const LayerSupports& layers, ColumnOrderPolicy policy) {
  const std::size_t n_layers = layers.size();
  std::vector<std::vector<std::size_t>> order(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) {
    order[l].resize(layers[l].size());
    for (std::size_t j = 0; j < layers[l].size(); ++j) order[l][j] = j;
    if (policy == ColumnOrderPolicy::kBlockSerial) continue;

    const auto& prev = layers[(l + n_layers - 1) % n_layers];
    auto prev_write_pos = [&prev](std::uint32_t col) -> int {
      for (std::size_t j = 0; j < prev.size(); ++j)
        if (prev[j] == col) return static_cast<int>(j);
      return -1;
    };
    const auto& layer = layers[l];
    std::stable_sort(order[l].begin(), order[l].end(),
                     [&](std::size_t a, std::size_t b) {
                       const int pa = prev_write_pos(layer[a]);
                       const int pb = prev_write_pos(layer[b]);
                       if ((pa < 0) != (pb < 0)) return pa < 0;  // free first
                       return pa < pb;  // shared: earliest-written first
                     });
  }
  return order;
}

std::vector<std::vector<std::size_t>> make_column_order(
    const QCLdpcCode& code, ColumnOrderPolicy policy) {
  return make_column_order(layer_supports(code), policy);
}

}  // namespace ldpc
