// Entry point of the standalone ldpc-verify binary; the same driver is
// reachable as `ldpc-lint verify ...`.
#include "analysis/verify_cli.hpp"

int main(int argc, char** argv) {
  return ldpc::run_verify_cli(argc, argv);
}
