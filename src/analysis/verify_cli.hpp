// ldpc-verify — CLI driver for the static value-range / bit-width verifier
// (range_verify.hpp). Also reachable as `ldpc-lint verify ...`.
//
//   ldpc-verify --all-codes 1 --json verify.json
//   ldpc-verify --code wifi-648 --format q6 --scaling offset-2 --verbose 1
//
// Sweeps (code x fixed-point format x scaling mode), prints per-site proven
// bounds, audits the HLS op-graph widths against them, and writes the JSON
// artifact scripts/check.sh archives.
//
// Exit status: 0 when every site of every report is safe (proven
// unsaturable, or clamped by the implementation) and the width audit is
// clean; 1 when any unsafe site or width violation exists; 2 on bad usage.
#pragma once

namespace ldpc {

int run_verify_cli(int argc, const char* const* argv);

}  // namespace ldpc
