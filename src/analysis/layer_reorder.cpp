#include "analysis/layer_reorder.hpp"

#include <algorithm>
#include <numeric>

namespace ldpc {

LayerSupports permute_supports(const LayerSupports& supports,
                               const std::vector<std::size_t>& permutation) {
  LDPC_CHECK(permutation.size() == supports.size());
  LayerSupports out;
  out.reserve(supports.size());
  for (std::size_t p : permutation) {
    LDPC_CHECK(p < supports.size());
    out.push_back(supports[p]);
  }
  return out;
}

namespace {

struct Objective {
  long long stalls = 0;
  long long cycles = 0;

  bool better_than(const Objective& other) const {
    if (stalls != other.stalls) return stalls < other.stalls;
    return cycles < other.cycles;
  }
};

/// Pairwise overlap counts, used to seed the search with a cheap greedy tour.
std::vector<std::vector<std::size_t>> overlap_matrix(
    const LayerSupports& supports) {
  const std::size_t L = supports.size();
  std::vector<std::vector<std::size_t>> m(L, std::vector<std::size_t>(L, 0));
  for (std::size_t a = 0; a < L; ++a)
    for (std::size_t b = 0; b < L; ++b) {
      if (a == b) continue;
      for (std::uint32_t col : supports[b])
        if (std::find(supports[a].begin(), supports[a].end(), col) !=
            supports[a].end())
          ++m[a][b];
    }
  return m;
}

/// Nearest-neighbour tour on the overlap matrix starting from layer 0:
/// repeatedly append the unvisited layer sharing the fewest columns with the
/// current tail (ties toward the lowest index, deterministic).
std::vector<std::size_t> greedy_order(const LayerSupports& supports) {
  const std::size_t L = supports.size();
  const auto m = overlap_matrix(supports);
  std::vector<bool> used(L, false);
  std::vector<std::size_t> order{0};
  used[0] = true;
  while (order.size() < L) {
    const std::size_t tail = order.back();
    std::size_t best = L;
    for (std::size_t c = 0; c < L; ++c) {
      if (used[c]) continue;
      if (best == L || m[tail][c] < m[tail][best]) best = c;
    }
    used[best] = true;
    order.push_back(best);
  }
  return order;
}

}  // namespace

LayerReorderResult optimize_layer_order(const LayerSupports& supports,
                                        std::size_t block_cols,
                                        const HardwareEstimate& estimate,
                                        ColumnOrderPolicy policy,
                                        std::size_t iterations) {
  const std::size_t L = supports.size();
  LDPC_CHECK(L >= 1 && iterations >= 1);

  LayerReorderResult result;
  auto evaluate = [&](const std::vector<std::size_t>& perm) -> Objective {
    const auto model = make_pipeline_model(permute_supports(supports, perm),
                                           block_cols, estimate, policy);
    const auto pred = predict_timing(model, iterations);
    ++result.evaluations;
    return Objective{pred.core1_stall_cycles, pred.cycles};
  };

  std::vector<std::size_t> natural(L);
  std::iota(natural.begin(), natural.end(), 0);
  const Objective natural_obj = evaluate(natural);
  result.natural_stalls = natural_obj.stalls;
  result.natural_cycles = natural_obj.cycles;

  std::vector<std::size_t> best_perm = natural;
  Objective best_obj = natural_obj;

  auto consider = [&](const std::vector<std::size_t>& perm, Objective obj) {
    if (obj.better_than(best_obj) ||
        (!best_obj.better_than(obj) && perm < best_perm)) {
      best_perm = perm;
      best_obj = obj;
    }
  };

  // Best-improvement local search over swaps and relocations. Position 0 is
  // pinned: the schedule is cyclic, so every rotation of a permutation has
  // identical steady-state timing and searching them is wasted work.
  auto local_search = [&](std::vector<std::size_t> perm) {
    Objective obj = evaluate(perm);
    consider(perm, obj);
    bool improved = true;
    while (improved && L > 2) {
      improved = false;
      std::vector<std::size_t> round_best_perm = perm;
      Objective round_best = obj;
      for (std::size_t i = 1; i < L; ++i) {
        for (std::size_t j = i + 1; j < L; ++j) {
          auto cand = perm;
          std::swap(cand[i], cand[j]);
          const Objective c = evaluate(cand);
          if (c.better_than(round_best)) {
            round_best = c;
            round_best_perm = std::move(cand);
          }
        }
        for (std::size_t j = 1; j < L; ++j) {
          if (j == i) continue;
          auto cand = perm;
          const std::size_t layer = cand[i];
          cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
          cand.insert(cand.begin() + static_cast<std::ptrdiff_t>(j), layer);
          const Objective c = evaluate(cand);
          if (c.better_than(round_best)) {
            round_best = c;
            round_best_perm = std::move(cand);
          }
        }
      }
      if (round_best.better_than(obj)) {
        perm = std::move(round_best_perm);
        obj = round_best;
        consider(perm, obj);
        improved = true;
      }
    }
  };

  local_search(natural);
  if (L > 2) local_search(greedy_order(supports));

  result.permutation = std::move(best_perm);
  result.best_stalls = best_obj.stalls;
  result.best_cycles = best_obj.cycles;
  return result;
}

LayerReorderResult optimize_layer_order(const QCLdpcCode& code,
                                        const HardwareEstimate& estimate,
                                        ColumnOrderPolicy policy,
                                        std::size_t iterations) {
  return optimize_layer_order(layer_supports(code), code.base().cols(),
                              estimate, policy, iterations);
}

}  // namespace ldpc
