#include "analysis/range_verify.hpp"

#include <algorithm>

#include "hls/pico.hpp"
#include "util/saturate.hpp"

namespace ldpc {

namespace {

/// Iterations before widening kicks in. The clamps bound every memory cell,
/// so real runs reach the fixpoint in 2-3 iterations; the budget only
/// guarantees termination if a future kernel variant removes a clamp.
constexpr int kWidenAfter = 8;
constexpr int kMaxIterations = 16;

/// Unsigned capacity of a `bits`-wide magnitude register.
constexpr std::int64_t unsigned_cap(int bits) {
  return (std::int64_t{1} << bits) - 1;
}

/// Minimal unsigned register width for a non-negative bound.
int required_unsigned_bits(std::int64_t hi) {
  int w = 1;
  while (unsigned_cap(w) < hi) ++w;
  return w;
}

/// Apply the kernel's magnitude correction as an interval transfer.
Interval scale_transfer(const ScalingSpec& s, const Interval& mag) {
  switch (s.kind) {
    case ScaleKind::kThreeQuarters:
      return interval_scale_three_quarters(mag);
    case ScaleKind::kNumDen:
      return interval_scale_num_den(mag, s.num, s.den);
    case ScaleKind::kOffset:
      return interval_offset(mag, s.offset_code);
  }
  return mag;
}

struct SiteAccumulator {
  Interval wide = Interval::bottom();
  Interval value = Interval::bottom();

  void record(const Interval& pre, const Interval& post) {
    wide = interval_join(wide, pre);
    value = interval_join(value, post);
  }
};

}  // namespace

std::string ScalingSpec::name() const {
  switch (kind) {
    case ScaleKind::kThreeQuarters:
      return "3/4-shift-add";
    case ScaleKind::kNumDen:
      return "scale-" + std::to_string(num) + "/" + std::to_string(den);
    case ScaleKind::kOffset:
      return "offset-" + std::to_string(offset_code);
  }
  return "?";
}

ScalingSpec ScalingSpec::from_kernel(const LayerRowKernel& kernel) {
  ScalingSpec s;
  if (kernel.offset_code() >= 0) {
    s.kind = ScaleKind::kOffset;
    s.offset_code = kernel.offset_code();
  } else if (kernel.scale_numerator() == 3 && kernel.scale_denominator() == 4) {
    s.kind = ScaleKind::kThreeQuarters;
  } else {
    s.kind = ScaleKind::kNumDen;
    s.num = kernel.scale_numerator();
    s.den = kernel.scale_denominator();
  }
  return s;
}

CodeFacts CodeFacts::from_code(const std::string& name,
                               const QCLdpcCode& code) {
  CodeFacts f;
  f.name = name;
  f.n = code.n();
  f.z = static_cast<std::size_t>(code.z());
  f.layers = code.num_layers();
  f.min_row_degree = static_cast<std::size_t>(-1);
  f.max_row_degree = 0;
  for (const auto& layer : code.layers()) {
    f.min_row_degree = std::min(f.min_row_degree, layer.size());
    f.max_row_degree = std::max(f.max_row_degree, layer.size());
  }
  if (f.layers == 0) f.min_row_degree = 0;
  f.has_degenerate_rows = f.min_row_degree < 2;
  return f;
}

const char* to_string(RangeSite site) {
  switch (site) {
    case RangeSite::kQuantizer:    return "quantizer";
    case RangeSite::kQ:            return "Q=P-R";
    case RangeSite::kMinMagnitude: return "min1/min2";
    case RangeSite::kScale:        return "scaled-magnitude";
    case RangeSite::kRNew:         return "R'";
    case RangeSite::kPNew:         return "P'=Q+R'";
  }
  return "?";
}

bool RangeReport::all_safe() const {
  return std::all_of(sites.begin(), sites.end(),
                     [](const SiteBound& s) { return s.safe(); });
}

RangeReport verify_ranges(const CodeFacts& facts,
                          const LayerRowKernel& kernel) {
  const FixedFormat format = kernel.format();
  const ScalingSpec scaling = ScalingSpec::from_kernel(kernel);
  const std::int64_t rail_lo = fixed_min(format.total_bits);
  const std::int64_t rail_hi = fixed_max(format.total_bits);
  const Interval rails = Interval::of(rail_lo, rail_hi);
  const Interval zero = Interval::point(0);

  // Abstract memory state: one interval per memory, joined across all
  // cells, layers and iterations (a sound summary — every concrete cell
  // value is contained in it at every step).
  Interval p_mem = rails;  // quantizer output: clamped to the rails
  Interval r_mem = zero;   // R memory starts zeroed

  SiteAccumulator acc_q;
  SiteAccumulator acc_mag;
  SiteAccumulator acc_scale;
  SiteAccumulator acc_r;
  SiteAccumulator acc_p;

  int iterations = 0;
  bool widened = false;
  for (; iterations < kMaxIterations; ++iterations) {
    // Stage 1: Q = P - R (saturating subtract).
    const Interval q_wide = interval_sub(p_mem, r_mem);
    const Interval q = interval_clamp(q_wide, rail_lo, rail_hi);
    acc_q.record(q_wide, q);

    // min1/min2: |Q| folded through the running minimum. The minimum of
    // k >= 1 draws from [a, b] stays inside [a, b], so the magnitude
    // interval is the (exact) bound of both state registers for every row
    // degree — which is what makes the verdict code-independent.
    const Interval mag = interval_abs(q);
    acc_mag.record(mag, mag);

    // Magnitude correction (pure function, no clamp).
    const Interval scaled = scale_transfer(scaling, mag);
    acc_scale.record(scaled, scaled);

    // Stage 2: sign re-application (sign_product ^ sign(Q) is unknown to
    // the domain: +-), then the R' clamp. Degenerate rows force R' = 0
    // before the clamp, which the join with {0} already covers via the
    // zeroed initial R memory — recorded explicitly anyway for reports.
    Interval r_wide = interval_plus_minus(scaled);
    if (facts.has_degenerate_rows) r_wide = interval_join(r_wide, zero);
    const Interval r_new = interval_clamp(r_wide, rail_lo, rail_hi);
    acc_r.record(r_wide, r_new);

    // Stage 2: P' = Q + R' (saturating add).
    const Interval p_wide = interval_add(q, r_new);
    const Interval p_new = interval_clamp(p_wide, rail_lo, rail_hi);
    acc_p.record(p_wide, p_new);

    // Join the write-backs into the memory state; fixpoint when stable.
    Interval p_next = interval_join(p_mem, p_new);
    Interval r_next = interval_join(r_mem, r_new);
    if (iterations >= kWidenAfter) {
      p_next = interval_widen(p_mem, p_next);
      r_next = interval_widen(r_mem, r_next);
      widened = true;
    }
    if (p_next == p_mem && r_next == r_mem) {
      ++iterations;
      break;
    }
    p_mem = p_next;
    r_mem = r_next;
  }

  RangeReport report;
  report.code = facts;
  report.format = format;
  report.scaling = scaling;
  report.iterations_to_fixpoint = iterations;
  report.widening_applied = widened;
  report.sites.resize(kNumRangeSites);

  auto fill = [&](RangeSite site, const SiteAccumulator& acc, bool has_clamp,
                  const Interval& site_rails) {
    SiteBound b;
    b.site = site;
    b.wide = acc.wide;
    b.value = acc.value;
    b.sign = interval_sign(acc.value);
    b.has_clamp = has_clamp;
    b.proven_unsaturable = site_rails.contains(acc.wide);
    b.clamp_required = !b.proven_unsaturable;
    b.min_safe_bits = required_bits(acc.wide);
    b.implemented_bits = format.total_bits;
    report.sites[static_cast<std::size_t>(site)] = b;
  };

  // Quantizer: unbounded float input, clamped at the rails.
  {
    SiteAccumulator quant;
    quant.record(Interval::top(), rails);
    fill(RangeSite::kQuantizer, quant, /*has_clamp=*/true, rails);
  }
  fill(RangeSite::kQ, acc_q, /*has_clamp=*/true, rails);
  // min1/min2 live in w-bit *unsigned magnitude* registers (hardware) /
  // int32 (software): their capacity is [0, 2^w - 1], not the signed rails.
  const Interval mag_rails = Interval::of(0, unsigned_cap(format.total_bits));
  fill(RangeSite::kMinMagnitude, acc_mag, /*has_clamp=*/false, mag_rails);
  fill(RangeSite::kScale, acc_scale, /*has_clamp=*/false, mag_rails);
  fill(RangeSite::kRNew, acc_r, /*has_clamp=*/true, rails);
  fill(RangeSite::kPNew, acc_p, /*has_clamp=*/true, rails);
  return report;
}

RangeReport verify_ranges(const CodeFacts& facts, FixedFormat format,
                          const ScalingSpec& scaling) {
  switch (scaling.kind) {
    case ScaleKind::kThreeQuarters:
      return verify_ranges(facts, LayerRowKernel(format));
    case ScaleKind::kNumDen:
      return verify_ranges(facts,
                           LayerRowKernel(format, scaling.num, scaling.den));
    case ScaleKind::kOffset:
      return verify_ranges(
          facts, LayerRowKernel::offset_kernel(format, scaling.offset_code));
  }
  return verify_ranges(facts, LayerRowKernel(format));
}

std::vector<OpWidthFinding> audit_opgraph_widths(const RangeReport& report,
                                                 const OpGraph& core1,
                                                 const OpGraph& core2) {
  std::vector<OpWidthFinding> findings;

  // Which proven bound each labelled register/operator must hold. Signed
  // sites compare two's-complement widths; magnitude sites (|Q|, min1/min2,
  // the scaler) are unsigned registers in the sign-magnitude datapath.
  struct NodeRule {
    const char* label;
    RangeSite site;
    bool is_unsigned;
  };
  static constexpr NodeRule kRules[] = {
      {"P_read", RangeSite::kPNew, false},
      {"R_read", RangeSite::kRNew, false},
      {"Q=P-R", RangeSite::kQ, false},
      {"|Q|", RangeSite::kMinMagnitude, true},
      {"min1_upd", RangeSite::kMinMagnitude, true},
      {"min2_upd", RangeSite::kMinMagnitude, true},
      {"min_select", RangeSite::kMinMagnitude, true},
      {"0.75x", RangeSite::kScale, true},
      {"apply_sign", RangeSite::kRNew, false},
      {"P'=Q+R'", RangeSite::kPNew, false},
      {"R_write", RangeSite::kRNew, false},
      {"P_write", RangeSite::kPNew, false},
  };

  auto audit_graph = [&](const OpGraph& graph) {
    for (const OpNode& node : graph.nodes()) {
      for (const NodeRule& rule : kRules) {
        if (node.label != rule.label) continue;
        const SiteBound& bound = report.site(rule.site);
        OpWidthFinding f;
        f.node = node.label;
        f.declared_bits = node.width;
        if (rule.is_unsigned) {
          f.required_bits = required_unsigned_bits(bound.value.hi);
          f.clamp_free_bits = required_unsigned_bits(bound.wide.hi);
          f.ok = unsigned_cap(node.width) >= bound.value.hi;
          f.detail = "unsigned magnitude register, value " + bound.value.str();
        } else {
          f.required_bits = required_bits(bound.value);
          f.clamp_free_bits = required_bits(bound.wide);
          f.ok = f.required_bits > 0 && node.width >= f.required_bits;
          f.detail = "two's-complement, value " + bound.value.str() +
                     ", pre-clamp " + bound.wide.str();
        }
        findings.push_back(std::move(f));
      }
    }
  };
  audit_graph(core1);
  audit_graph(core2);
  return findings;
}

namespace {

std::string json_interval(const Interval& v) {
  if (v.empty()) return "null";
  std::string s = "[";
  s += v.lo == Interval::kNegInf ? "null" : std::to_string(v.lo);
  s += ", ";
  s += v.hi == Interval::kPosInf ? "null" : std::to_string(v.hi);
  s += "]";
  return s;
}

const char* json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string range_reports_json(const std::vector<RangeReport>& reports) {
  std::string out = "{\n  \"tool\": \"ldpc-verify\",\n  \"reports\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const RangeReport& r = reports[i];
    out += "    {\n";
    out += "      \"code\": \"" + r.code.name + "\",\n";
    out += "      \"n\": " + std::to_string(r.code.n) + ",\n";
    out += "      \"z\": " + std::to_string(r.code.z) + ",\n";
    out += "      \"layers\": " + std::to_string(r.code.layers) + ",\n";
    out += "      \"row_degree\": [" + std::to_string(r.code.min_row_degree) +
           ", " + std::to_string(r.code.max_row_degree) + "],\n";
    out += "      \"degenerate_rows\": " +
           std::string(json_bool(r.code.has_degenerate_rows)) + ",\n";
    out += "      \"format\": \"" + r.format.name() + "\",\n";
    out += "      \"total_bits\": " + std::to_string(r.format.total_bits) +
           ",\n";
    out += "      \"scaling\": \"" + r.scaling.name() + "\",\n";
    out += "      \"iterations_to_fixpoint\": " +
           std::to_string(r.iterations_to_fixpoint) + ",\n";
    out += "      \"widening_applied\": " +
           std::string(json_bool(r.widening_applied)) + ",\n";
    out += "      \"all_safe\": " + std::string(json_bool(r.all_safe())) +
           ",\n";
    out += "      \"sites\": [\n";
    for (std::size_t s = 0; s < r.sites.size(); ++s) {
      const SiteBound& b = r.sites[s];
      out += "        {\"site\": \"" + std::string(to_string(b.site)) +
             "\", \"wide\": " + json_interval(b.wide) +
             ", \"value\": " + json_interval(b.value) + ", \"sign\": \"" +
             to_string(b.sign) + "\", \"has_clamp\": " +
             json_bool(b.has_clamp) + ", \"proven_unsaturable\": " +
             json_bool(b.proven_unsaturable) + ", \"clamp_required\": " +
             json_bool(b.clamp_required) + ", \"min_safe_bits\": " +
             std::to_string(b.min_safe_bits) + ", \"implemented_bits\": " +
             std::to_string(b.implemented_bits) + ", \"safe\": " +
             json_bool(b.safe()) + "}";
      out += s + 1 < r.sites.size() ? ",\n" : "\n";
    }
    out += "      ],\n";
    // Width audit against the HLS graphs built for this report's format.
    const PicoCompiler pico(r.format);
    const auto audit = audit_opgraph_widths(r, pico.build_core1_graph(),
                                            pico.build_core2_graph());
    out += "      \"opgraph_audit\": [\n";
    for (std::size_t a = 0; a < audit.size(); ++a) {
      const OpWidthFinding& f = audit[a];
      out += "        {\"node\": \"" + f.node +
             "\", \"declared_bits\": " + std::to_string(f.declared_bits) +
             ", \"required_bits\": " + std::to_string(f.required_bits) +
             ", \"clamp_free_bits\": " + std::to_string(f.clamp_free_bits) +
             ", \"ok\": " + json_bool(f.ok) + "}";
      out += a + 1 < audit.size() ? ",\n" : "\n";
    }
    out += "      ]\n";
    out += i + 1 < reports.size() ? "    },\n" : "    }\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace ldpc
