// Layer-permutation schedule optimizer.
//
// A layered decoder may process the base-matrix block rows in any order —
// the parity checks are unchanged and layered min-sum converges with any
// layer sequence — but the two-layer pipeline's stalls depend entirely on
// which columns cyclically consecutive layers share. Since the static timing
// model predicts those stalls cycle-exactly, the layer order can be
// optimized offline (the ordering a designer would bake into the
// parity-check-matrix ROM) and the winner verified in the cycle-accurate
// simulator via BaseMatrix::permuted_rows.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/pipeline_model.hpp"

namespace ldpc {

struct LayerReorderResult {
  /// permutation[i] = original layer processed i-th; identity when the
  /// natural order is already optimal among the candidates searched.
  std::vector<std::size_t> permutation;
  long long natural_stalls = 0;  ///< predicted, natural layer order
  long long best_stalls = 0;     ///< predicted, returned permutation
  long long natural_cycles = 0;  ///< predicted decode latency, natural order
  long long best_cycles = 0;
  std::size_t evaluations = 0;   ///< timing-model evaluations spent
};

/// Search layer permutations minimizing predicted core-1 stalls over
/// `iterations` (ties broken toward lower predicted latency, then toward
/// the lexicographically smaller permutation). Deterministic: greedy
/// overlap-minimizing construction plus best-improvement local search over
/// swaps and relocations, seeded from the natural order and the greedy
/// order. The first layer is pinned — layer order is cyclic, so rotations
/// are equivalent and pinning quotients them out.
LayerReorderResult optimize_layer_order(const LayerSupports& supports,
                                        std::size_t block_cols,
                                        const HardwareEstimate& estimate,
                                        ColumnOrderPolicy policy,
                                        std::size_t iterations);

LayerReorderResult optimize_layer_order(const QCLdpcCode& code,
                                        const HardwareEstimate& estimate,
                                        ColumnOrderPolicy policy,
                                        std::size_t iterations);

/// Apply a layer permutation to supports (helper for evaluating candidates).
LayerSupports permute_supports(const LayerSupports& supports,
                               const std::vector<std::size_t>& permutation);

}  // namespace ldpc
