#include "analysis/pipeline_model.hpp"

#include <algorithm>

namespace ldpc {

PipelineModel make_pipeline_model(const LayerSupports& supports,
                                  std::size_t block_cols,
                                  const HardwareEstimate& estimate,
                                  ColumnOrderPolicy policy) {
  PipelineModel m;
  m.block_cols = block_cols;
  m.fold = estimate.fold;
  m.core1_latency = estimate.core1_latency;
  m.core2_latency = estimate.core2_latency;
  m.pipelined = estimate.arch == ArchKind::kTwoLayerPipelined;

  std::size_t max_deg = 0;
  for (const auto& layer : supports) max_deg = std::max(max_deg, layer.size());
  m.fifo_capacity = max_deg;

  const auto order = make_column_order(supports, policy);
  m.layers.resize(supports.size());
  for (std::size_t l = 0; l < supports.size(); ++l) {
    m.layers[l].reserve(supports[l].size());
    for (std::size_t j : order[l]) {
      LDPC_CHECK(supports[l][j] < block_cols);
      m.layers[l].push_back(supports[l][j]);
    }
  }
  return m;
}

PipelineModel make_pipeline_model(const QCLdpcCode& code,
                                  const HardwareEstimate& estimate,
                                  ColumnOrderPolicy policy) {
  return make_pipeline_model(layer_supports(code), code.base().cols(), estimate,
                             policy);
}

TimingPrediction predict_timing(const PipelineModel& model,
                                std::size_t iterations, int et_check_cycles) {
  LDPC_CHECK(iterations >= 1);
  LDPC_CHECK(model.fold >= 1 && model.core1_latency >= 1 &&
             model.core2_latency >= 1);
  LDPC_CHECK(model.fifo_capacity >= 1 && !model.layers.empty());

  const long long fold = model.fold;
  const long long d1 = model.core1_latency;
  const long long d2 = model.core2_latency;
  const std::size_t cap = model.fifo_capacity;

  // Scoreboard state: pending bit + the cycle the in-flight write lands.
  std::vector<bool> pending(model.block_cols, false);
  std::vector<long long> clear_time(model.block_cols, -1);
  // Q-FIFO occupancy proxy: pop times of the last `cap` entries.
  std::vector<long long> pop_times(cap, -1);
  std::size_t push_count = 0;

  long long core1_free = 0;
  long long core2_free = 0;
  long long last_write_land = -1;

  TimingPrediction out;
  out.per_layer_stalls.assign(model.layers.size(), 0);
  std::vector<long long> absorb;

  for (std::size_t iter = 1; iter <= iterations; ++iter) {
    for (std::size_t l = 0; l < model.layers.size(); ++l) {
      const auto& cols = model.layers[l];
      LDPC_CHECK_MSG(cols.size() <= cap,
                     "layer " << l << " degree " << cols.size()
                              << " exceeds Q FIFO capacity " << cap);
      absorb.assign(cols.size(), 0);

      // ---- Core 1: issue beats with RAW / back-pressure bounds ----------
      long long core1_done = -1;
      for (std::size_t j = 0; j < cols.size(); ++j) {
        const std::uint32_t col = cols[j];
        const long long ready = core1_free;
        long long issue = ready;
        bool fifo_bound = false;
        if (model.pipelined) {
          if (pending[col]) {
            LDPC_CHECK_MSG(clear_time[col] >= 0,
                           "core 1 would deadlock: pending write to column "
                               << col << " never scheduled");
            issue = std::max(issue, clear_time[col] + 1);
          }
          if (push_count >= cap) {
            const long long blocking_pop = pop_times[(push_count - cap) % cap];
            const long long earliest =
                blocking_pop + 1 - (fold - 1) - (d1 - 1);
            if (earliest > issue) {
              issue = earliest;
              fifo_bound = true;
            }
          }
          if (issue > ready) {
            out.core1_stall_cycles += issue - ready;
            out.per_layer_stalls[l] += issue - ready;
            out.events.push_back(
                StallEvent{iter, l, col, issue - ready, fifo_bound});
          }
          if (pending[col]) {
            pending[col] = false;
            clear_time[col] = -1;
          }
        }
        core1_free = issue + fold;
        absorb[j] = issue + fold - 1 + (d1 - 1);
        core1_done = absorb[j];
        ++push_count;
        if (model.pipelined) pending[col] = true;
      }

      // ---- Core 2: chase the absorb times, land the writes --------------
      long long core2_start = std::max(core2_free, core1_done + 1);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        const long long issue = std::max(core2_start, absorb[j] + 1);
        core2_start = issue + fold;
        core2_free = core2_start;
        const long long land = issue + fold - 1 + (d2 - 1);
        last_write_land = std::max(last_write_land, land);
        if (model.pipelined) clear_time[cols[j]] = land;
        pop_times[(push_count - cols.size() + j) % cap] = issue;
      }

      // Per-layer schedule: the next layer's reads wait for every write.
      if (!model.pipelined)
        core1_free = std::max(core1_free, last_write_land + 1);
    }
    if (iter == 1) out.first_iteration_cycles = last_write_land + 1;
    if (et_check_cycles > 0) {
      last_write_land += et_check_cycles;
      core1_free = std::max(core1_free, last_write_land + 1);
    }
  }
  out.cycles = last_write_land + 1;
  return out;
}

long long steady_state_stalls(const PipelineModel& model) {
  // Iteration 2 already sees the wrapped-around pipeline state, and the
  // recurrence is periodic from there: one extra iteration isolates the
  // steady-state per-iteration cost.
  const auto two = predict_timing(model, 2);
  const auto three = predict_timing(model, 3);
  return three.core1_stall_cycles - two.core1_stall_cycles;
}

}  // namespace ldpc
