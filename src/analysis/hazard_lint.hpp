// Static hazard lint over a code's layer structure (§IV-B).
//
// The two-layer pipeline's RAW hazards are fixed by the base matrix: core 1
// of layer l+1 stalls exactly on the block columns layer l also touches.
// These passes prove schedule-level properties of that structure — before
// any simulation — and flag the degenerate shapes that defeat the pipeline
// or break the scoreboard's accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/column_order.hpp"
#include "analysis/opgraph_lint.hpp"

namespace ldpc {

/// Shared block columns of each cyclically consecutive layer pair — the
/// statically known RAW-hazard set the scoreboard resolves at run time.
struct LayerOverlap {
  std::size_t from = 0;  ///< writing layer
  std::size_t to = 0;    ///< reading layer ((from + 1) % L)
  std::vector<std::uint32_t> shared_cols;
  bool subset = false;   ///< every column `to` reads is written by `from`
};

std::vector<LayerOverlap> consecutive_overlaps(const LayerSupports& supports);

/// Layer-structure checks:
///   column-out-of-range   support references a block column >= block_cols
///   duplicate-column      a layer reads the same block column twice — the
///                         scoreboard would double-set and core 1 deadlock
///   degenerate-layer-pair every column layer l+1 reads is pending from
///                         layer l: the two-layer overlap of Fig. 6 degrades
///                         to the serial schedule of Fig. 4
///   idle-column (warning) a block column no layer touches
std::vector<LintFinding> lint_layer_hazards(const LayerSupports& supports,
                                            std::size_t block_cols);

inline std::vector<LintFinding> lint_layer_hazards(const QCLdpcCode& code) {
  return lint_layer_hazards(layer_supports(code), code.base().cols());
}

}  // namespace ldpc
