#include "analysis/verify_cli.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/range_verify.hpp"
#include "codes/registry.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "hls/pico.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace ldpc {

namespace {

struct NamedCode {
  std::string name;
  const QCLdpcCode* code;
};

/// Every registered code: WiMAX rates at the requested z, both WiFi codes,
/// and the external-code registry. Storage for constructed codes lives in
/// `owned` so the pointers stay valid.
std::vector<NamedCode> select_codes(const std::string& which, int z,
                                    std::vector<QCLdpcCode>& owned) {
  std::vector<NamedCode> out;
  owned.reserve(all_wimax_rates().size() + 2);
  auto keep = [&](const std::string& name, QCLdpcCode code) {
    owned.push_back(std::move(code));
    out.push_back(NamedCode{name, &owned.back()});
  };
  for (WimaxRate rate : all_wimax_rates()) {
    const std::string name = wimax_rate_name(rate);
    if (which == "all" || which == name)
      keep(name + " z" + std::to_string(z), make_wimax_code(rate, z));
  }
  if (which == "all" || which == "wifi-648")
    keep("wifi-648", make_wifi_648_half_rate());
  if (which == "all" || which == "wifi-1944")
    keep("wifi-1944", make_wifi_1944_half_rate());
  for (const std::string& name : external_code_names()) {
    if (which == "all" || which == name)
      out.push_back(NamedCode{name, &external_code(name)});
  }
  if (out.empty())
    throw Error("unknown --code '" + which +
                "' (use all, wimax-1/2 ... wimax-5/6, wifi-648, wifi-1944, or "
                "a registry name)");
  return out;
}

/// The message formats the paper sweeps: q8.2 (Fig. 5) and q6.1 (Table II).
std::vector<FixedFormat> select_formats(const std::string& which) {
  if (which == "all") return {FixedFormat{8, 2}, FixedFormat{6, 1}};
  if (which == "q8") return {FixedFormat{8, 2}};
  if (which == "q6") return {FixedFormat{6, 1}};
  // Generic qT.F spelling, e.g. q10.3.
  if (which.size() > 1 && which[0] == 'q') {
    const auto dot = which.find('.');
    if (dot != std::string::npos) {
      FixedFormat fmt;
      fmt.total_bits = std::stoi(which.substr(1, dot - 1));
      fmt.frac_bits = std::stoi(which.substr(dot + 1));
      validate(fmt);
      return {fmt};
    }
  }
  throw Error("unknown --format '" + which + "' (use all, q8, q6, or qT.F)");
}

/// The correction modes the decoder factory exposes: the paper's 0.75
/// shift-add, the num/16 ablation ladder endpoints, and offset min-sum with
/// and without a correction (offset-0 is plain min-sum).
std::vector<ScalingSpec> select_scalings(const std::string& which) {
  if (which == "all") {
    ScalingSpec sa;  // 3/4 shift-add
    ScalingSpec s1516{ScaleKind::kNumDen, 15, 16, 0};
    ScalingSpec s1616{ScaleKind::kNumDen, 16, 16, 0};
    ScalingSpec off2{ScaleKind::kOffset, 3, 4, 2};
    ScalingSpec off0{ScaleKind::kOffset, 3, 4, 0};
    return {sa, s1516, s1616, off2, off0};
  }
  if (which == "0.75" || which == "3/4") return {ScalingSpec{}};
  if (which.rfind("offset-", 0) == 0) {
    ScalingSpec s{ScaleKind::kOffset, 3, 4,
                  std::stoi(which.substr(sizeof("offset-") - 1))};
    if (s.offset_code < 0) throw Error("offset must be >= 0");
    return {s};
  }
  const auto slash = which.find('/');
  if (slash != std::string::npos) {
    ScalingSpec s{ScaleKind::kNumDen, std::stoi(which.substr(0, slash)),
                  std::stoi(which.substr(slash + 1)), 0};
    if (s.num <= 0 || s.den <= 0 || s.num > s.den)
      throw Error("--scaling num/den needs 0 < num <= den");
    return {s};
  }
  throw Error("unknown --scaling '" + which +
              "' (use all, 0.75, num/den, offset-N)");
}

}  // namespace

int run_verify_cli(int argc, const char* const* argv) try {
  const CliArgs args(argc, argv,
                     {"code", "z", "format", "scaling", "json", "verbose",
                      "all-codes"},
                     /*boolean_flags=*/{"all-codes", "verbose"});
  const int z = static_cast<int>(args.get_int("z", 96));
  const std::string which_code =
      args.has("all-codes") ? "all" : args.get("code", "all");
  const bool verbose = args.has("verbose");

  std::vector<QCLdpcCode> owned;
  const auto codes = select_codes(which_code, z, owned);
  const auto formats = select_formats(args.get("format", "all"));
  const auto scalings = select_scalings(args.get("scaling", "all"));

  std::vector<RangeReport> reports;
  reports.reserve(codes.size() * formats.size() * scalings.size());
  int unsafe_sites = 0;
  int width_violations = 0;

  TextTable summary("Static range verification (fixpoint per code x format x "
                    "scaling; exit 1 on any unsafe site)");
  summary.set_header({"code", "format", "scaling", "iters", "R' pre-clamp",
                      "P' pre-clamp", "clamp-free bits", "unsafe"});

  for (const NamedCode& nc : codes) {
    const CodeFacts facts = CodeFacts::from_code(nc.name, *nc.code);
    for (const FixedFormat& fmt : formats) {
      for (const ScalingSpec& spec : scalings) {
        RangeReport report = verify_ranges(facts, fmt, spec);

        int report_unsafe = 0;
        int clamp_free_bits = 0;
        for (const SiteBound& site : report.sites) {
          if (!site.safe()) ++report_unsafe;
          if (site.site != RangeSite::kQuantizer && site.min_safe_bits > 0)
            clamp_free_bits = std::max(clamp_free_bits, site.min_safe_bits);
        }
        unsafe_sites += report_unsafe;

        const PicoCompiler pico(fmt);
        const auto audit = audit_opgraph_widths(
            report, pico.build_core1_graph(), pico.build_core2_graph());
        for (const OpWidthFinding& f : audit) {
          if (f.ok) continue;
          ++width_violations;
          std::printf("%s %s %s: error: [width] node '%s' declares %d bits "
                      "but the proven bound needs %d (%s)\n",
                      nc.name.c_str(), fmt.name().c_str(),
                      spec.name().c_str(), f.node.c_str(), f.declared_bits,
                      f.required_bits, f.detail.c_str());
        }

        summary.add_row(
            {nc.name, fmt.name(), spec.name(),
             TextTable::integer(report.iterations_to_fixpoint),
             report.site(RangeSite::kRNew).wide.str(),
             report.site(RangeSite::kPNew).wide.str(),
             TextTable::integer(clamp_free_bits),
             report_unsafe == 0 ? "-" : TextTable::integer(report_unsafe)});

        if (verbose) {
          TextTable detail(nc.name + " " + fmt.name() + " " + spec.name());
          detail.set_header({"site", "pre-clamp", "post-clamp", "sign",
                             "clamped", "proven", "min bits", "safe"});
          for (const SiteBound& s : report.sites) {
            detail.add_row({to_string(s.site), s.wide.str(), s.value.str(),
                            to_string(s.sign), s.has_clamp ? "yes" : "no",
                            s.proven_unsaturable ? "unsaturable"
                                                 : "clamp required",
                            TextTable::integer(s.min_safe_bits),
                            s.safe() ? "yes" : "NO"});
          }
          std::printf("%s", detail.str().c_str());
        }

        reports.push_back(std::move(report));
      }
    }
  }

  std::printf("%s", summary.str().c_str());

  if (args.has("json")) {
    const std::string path = args.get("json", "-");
    const std::string doc = range_reports_json(reports);
    if (path == "-") {
      std::printf("%s", doc.c_str());
    } else {
      std::ofstream out(path);
      if (!out) throw Error("cannot write --json file '" + path + "'");
      out << doc;
    }
  }

  if (unsafe_sites > 0 || width_violations > 0) {
    std::printf("ldpc-verify: %d unsafe site(s), %d width violation(s)\n",
                unsafe_sites, width_violations);
    return 1;
  }
  std::printf("ldpc-verify: %zu report(s), all sites safe\n", reports.size());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "ldpc-verify: %s\n", e.what());
  return 2;
}

}  // namespace ldpc
