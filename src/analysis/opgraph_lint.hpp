// Structural lint passes over HLS operator graphs and their schedules.
//
// OpGraph::add() enforces topological insertion, so graphs built through the
// normal API are well formed by construction — but graphs also arrive from
// generators and (in tests) from hand-built node lists, and the scheduler's
// output is itself worth verifying independently. These passes therefore
// operate on raw node lists and ScheduledOp vectors, not on OpGraph's
// invariant-protected interface: they re-prove the invariants instead of
// assuming them, the way PICO's own consistency passes re-checked each
// compilation stage.
#pragma once

#include <string>
#include <vector>

#include "hls/opgraph.hpp"
#include "hls/scheduler.hpp"

namespace ldpc {

enum class LintSeverity { kWarning, kError };

struct LintFinding {
  LintSeverity severity = LintSeverity::kError;
  std::string pass;     ///< e.g. "dangling-edge", "combinational-cycle"
  std::string message;  ///< names the offending op / layer
};

bool lint_has_errors(const std::vector<LintFinding>& findings);
std::string format_findings(const std::vector<LintFinding>& findings);

/// Display name of node `i` ("label" or "op<i>"), bounds-tolerant.
std::string lint_node_name(const std::vector<OpNode>& nodes, std::size_t i);

/// Structural checks on an operator graph against a clock target:
///   dangling-edge        dependency on a node id that does not exist
///   combinational-cycle  dependency cycle (no registers to break it)
///   zero-width           operand width < 1
///   unschedulable-op     single operator delay exceeds the clock budget
///   dead-op (warning)    value computed but never consumed (non-sink,
///                        non-output nodes only)
std::vector<LintFinding> lint_opgraph(const std::vector<OpNode>& nodes,
                                      double clock_period_ns,
                                      double sequencing_overhead_ns = 0.35);

inline std::vector<LintFinding> lint_opgraph(
    const OpGraph& graph, double clock_period_ns,
    double sequencing_overhead_ns = 0.35) {
  return lint_opgraph(graph.nodes(), clock_period_ns, sequencing_overhead_ns);
}

/// Independent verification of a schedule (from schedule_detail or any other
/// scheduler): every op scheduled once, dependency cycles monotone,
/// same-cycle chaining consistent, and no intra-cycle chain exceeding the
/// clock budget ("stage clock-budget overflow").
std::vector<LintFinding> lint_schedule(const std::vector<OpNode>& nodes,
                                       const std::vector<ScheduledOp>& schedule,
                                       double clock_period_ns,
                                       double sequencing_overhead_ns = 0.35);

/// Register lifetime / pressure report for a scheduled graph: how many bits
/// of pipeline register each cycle boundary carries (a value produced in
/// cycle c and last consumed in cycle u crosses boundaries c..u-1).
struct RegisterPressure {
  /// live_bits[b] = bits registered across the boundary between cycle b and
  /// cycle b+1; size = pipeline depth - 1.
  std::vector<long long> live_bits;
  long long peak_bits = 0;
  /// Sum over boundaries — equals ScheduleResult::register_bits.
  long long total_register_bits = 0;
};

RegisterPressure register_pressure(const std::vector<OpNode>& nodes,
                                   const std::vector<ScheduledOp>& schedule);

}  // namespace ldpc
