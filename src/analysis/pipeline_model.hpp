// Static timing model of the two decoder schedules (§IV, Fig. 4/6).
//
// The analytic timing engine inside ArchSimDecoder is data independent: the
// issue cycle of every block-column beat is fully determined by the code's
// layer structure, the column processing order, the pipeline depths the HLS
// schedule produced, and the Q-FIFO capacity. This model replays exactly
// that recurrence — scoreboard RAW stalls, FIFO back-pressure, per-layer
// drain barriers — without running the datapath, which makes core-1 stall
// counts and decode latency statically predictable. The prediction is
// asserted cycle-exact against the simulator's measured counters for every
// bundled code and parallelism (tests/analysis_test.cpp), so it can drive
// schedule optimization (layer_reorder.hpp) and lint diagnostics with the
// authority of the scoreboard itself.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/column_order.hpp"
#include "hls/pico.hpp"

namespace ldpc {

/// Structural inputs of the timing recurrence. `layers[l]` lists the block
/// columns of layer l in the order core 1 processes them (i.e. the support
/// with a ColumnOrderPolicy already applied).
struct PipelineModel {
  std::vector<std::vector<std::uint32_t>> layers;
  std::size_t block_cols = 0;     ///< scoreboard width (base-matrix columns)
  int fold = 1;                   ///< z / parallelism: beats per block column
  int core1_latency = 1;          ///< front-end pipeline depth D1
  int core2_latency = 1;          ///< back-end pipeline depth D2
  std::size_t fifo_capacity = 0;  ///< Q FIFO slots (max block-row degree)
  bool pipelined = true;          ///< Fig. 6 two-layer overlap vs Fig. 4
};

/// Model of (code, estimate) under a column-order policy — mirrors the
/// configuration ArchSimDecoder derives from the same inputs.
PipelineModel make_pipeline_model(const QCLdpcCode& code,
                                  const HardwareEstimate& estimate,
                                  ColumnOrderPolicy policy);

/// Same, but over explicit layer supports (block-serial per layer) — used by
/// the layer-permutation search, which cannot afford a code re-expansion per
/// candidate, and by defect-seeding tests.
PipelineModel make_pipeline_model(const LayerSupports& supports,
                                  std::size_t block_cols,
                                  const HardwareEstimate& estimate,
                                  ColumnOrderPolicy policy);

/// One predicted core-1 stall event.
struct StallEvent {
  std::size_t iteration = 0;   ///< 1-based, matching DecodeResult::iterations
  std::size_t layer = 0;       ///< layer index within the iteration
  std::uint32_t block_col = 0; ///< column whose read was delayed
  long long cycles = 0;        ///< stall length
  bool fifo = false;           ///< true if Q-FIFO back-pressure set the bound
};

/// Cycle-exact prediction for a fixed iteration count.
struct TimingPrediction {
  long long core1_stall_cycles = 0;      ///< == ActivityCounters value
  long long cycles = 0;                  ///< total decode latency
  long long first_iteration_cycles = 0;  ///< the Fig. 8a metric
  std::vector<long long> per_layer_stalls;  ///< summed over iterations
  std::vector<StallEvent> events;           ///< chronological attribution
};

/// Replay the timing recurrence for `iterations` full iterations.
/// `et_check_cycles` models a dedicated syndrome-check pass between
/// iterations (ArchSimConfig::et_check_cycles with early termination on);
/// pass 0 for the paper's free on-the-fly check or for ET-off runs. Because
/// the recurrence is data independent, a decode that executes k iterations
/// measures exactly predict_timing(model, k).
TimingPrediction predict_timing(const PipelineModel& model,
                                std::size_t iterations,
                                int et_check_cycles = 0);

/// Steady-state stalls of one iteration deep inside a long decode (the
/// per-iteration cost layer reordering minimizes): total over `iterations`
/// minus total over `iterations - 1`.
long long steady_state_stalls(const PipelineModel& model);

}  // namespace ldpc
