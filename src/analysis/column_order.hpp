// Per-layer block-column processing orders.
//
// The order in which a layer's non-zero circulants are fed to core 1 is a
// free scheduling choice: the min update is order independent and the
// scoreboard enforces RAW regardless. It is also the main lever on pipeline
// stalls, so the policy lives here — shared verbatim by the cycle-accurate
// simulator (arch/arch_sim.cpp) and the static hazard analyzer, which keeps
// the two views of the schedule provably identical.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/qc_code.hpp"

namespace ldpc {

enum class ColumnOrderPolicy {
  /// Block-serial order of Fig. 4: ascending base-matrix column.
  kBlockSerial,
  /// Columns the (cyclically) previous layer does not write first, then
  /// shared columns in the previous layer's write order — maximizing the
  /// distance between each P write and the dependent read.
  kHazardAware,
};

/// Column supports per layer in block-serial order — the representation the
/// order policies and the static timing model operate on. Extracted from a
/// code via `layer_supports()`, or built by hand (layer-permutation search,
/// defect seeding in tests).
using LayerSupports = std::vector<std::vector<std::uint32_t>>;

/// Block columns of each layer's non-zero circulants, ascending.
LayerSupports layer_supports(const QCLdpcCode& code);

/// Per-layer processing order: `order[l][j]` is the index (into the layer's
/// block-serial support) of the j-th column core 1 reads.
std::vector<std::vector<std::size_t>> make_column_order(
    const LayerSupports& layers, ColumnOrderPolicy policy);

std::vector<std::vector<std::size_t>> make_column_order(
    const QCLdpcCode& code, ColumnOrderPolicy policy);

}  // namespace ldpc
