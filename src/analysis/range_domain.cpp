#include "analysis/range_domain.hpp"

#include <array>

namespace ldpc {

namespace {

constexpr std::int64_t kNegInf = Interval::kNegInf;
constexpr std::int64_t kPosInf = Interval::kPosInf;

}  // namespace

const char* to_string(Sign s) {
  switch (s) {
    case Sign::kBottom:  return "bottom";
    case Sign::kZero:    return "0";
    case Sign::kNeg:     return "-";
    case Sign::kPos:     return "+";
    case Sign::kNonPos:  return "<=0";
    case Sign::kNonNeg:  return ">=0";
    case Sign::kNonZero: return "!=0";
    case Sign::kTop:     return "any";
  }
  return "?";
}

Sign sign_join(Sign a, Sign b) {
  if (a == b) return a;
  if (a == Sign::kBottom) return b;
  if (b == Sign::kBottom) return a;
  // Encode each element as the subset of {neg, zero, pos} it covers, join
  // as set union, decode. Three bits: 1 = neg, 2 = zero, 4 = pos.
  auto bits = [](Sign s) -> unsigned {
    switch (s) {
      case Sign::kBottom:  return 0;
      case Sign::kZero:    return 2;
      case Sign::kNeg:     return 1;
      case Sign::kPos:     return 4;
      case Sign::kNonPos:  return 3;
      case Sign::kNonNeg:  return 6;
      case Sign::kNonZero: return 5;
      case Sign::kTop:     return 7;
    }
    return 7;
  };
  static constexpr std::array<Sign, 8> kDecode = {
      Sign::kBottom, Sign::kNeg,    Sign::kZero,   Sign::kNonPos,
      Sign::kPos,    Sign::kNonZero, Sign::kNonNeg, Sign::kTop};
  return kDecode[bits(a) | bits(b)];
}

std::string Interval::str() const {
  if (empty()) return "[]";
  std::string s = "[";
  s += lo == kNegInf ? "-inf" : std::to_string(lo);
  s += ", ";
  s += hi == kPosInf ? "+inf" : std::to_string(hi);
  s += "]";
  return s;
}

std::int64_t sat64_add(std::int64_t a, std::int64_t b) {
  // The infinities absorb; finite overflow saturates to the matching rail.
  if (a == kPosInf || b == kPosInf) return kPosInf;
  if (a == kNegInf || b == kNegInf) return kNegInf;
  if (b > 0 && a > kPosInf - b) return kPosInf;
  if (b < 0 && a < kNegInf - b) return kNegInf;
  return a + b;
}

std::int64_t sat64_neg(std::int64_t a) {
  if (a == kNegInf) return kPosInf;
  if (a == kPosInf) return kNegInf;
  return -a;
}

Interval interval_join(const Interval& a, const Interval& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return Interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval interval_meet(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::bottom();
  const Interval m{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
  return m.lo <= m.hi ? m : Interval::bottom();
}

Interval interval_widen(const Interval& prev, const Interval& next) {
  if (prev.empty()) return next;
  if (next.empty()) return prev;
  return Interval{next.lo < prev.lo ? kNegInf : prev.lo,
                  next.hi > prev.hi ? kPosInf : prev.hi};
}

Interval interval_add(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::bottom();
  return Interval{sat64_add(a.lo, b.lo), sat64_add(a.hi, b.hi)};
}

Interval interval_sub(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::bottom();
  return Interval{sat64_add(a.lo, sat64_neg(b.hi)),
                  sat64_add(a.hi, sat64_neg(b.lo))};
}

Interval interval_neg(const Interval& a) {
  if (a.empty()) return a;
  return Interval{sat64_neg(a.hi), sat64_neg(a.lo)};
}

Interval interval_abs(const Interval& a) {
  if (a.empty()) return a;
  if (a.lo >= 0) return a;
  if (a.hi <= 0) return interval_neg(a);
  return Interval{0, std::max(sat64_neg(a.lo), a.hi)};
}

Interval interval_min(const Interval& a, const Interval& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return Interval{std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval interval_plus_minus(const Interval& mag) {
  return interval_join(mag, interval_neg(mag));
}

namespace {

/// Concrete scale_three_quarters on a non-negative int64 (same truncation
/// per shift as util/saturate.hpp; >> on non-negative values is division).
std::int64_t scale34(std::int64_t x) {
  if (x == kPosInf) return kPosInf;
  return (x >> 1) + (x >> 2);
}

}  // namespace

Interval interval_scale_three_quarters(const Interval& mag) {
  if (mag.empty()) return mag;
  LDPC_CHECK(mag.lo >= 0);  // magnitudes only, like the concrete datapath
  // f(x) = (x>>1)+(x>>2) is monotone non-decreasing on x >= 0, so the
  // endpoint image is exact.
  return Interval{scale34(mag.lo), scale34(mag.hi)};
}

Interval interval_scale_num_den(const Interval& mag, std::int64_t num,
                                std::int64_t den) {
  if (mag.empty()) return mag;
  LDPC_CHECK(mag.lo >= 0 && num > 0 && den > 0);
  auto f = [&](std::int64_t x) {
    if (x == kPosInf) return kPosInf;
    return x * num / den;  // bounded by the caller's rails, no overflow
  };
  return Interval{f(mag.lo), f(mag.hi)};
}

Interval interval_offset(const Interval& mag, std::int64_t offset) {
  if (mag.empty()) return mag;
  LDPC_CHECK(mag.lo >= 0 && offset >= 0);
  auto f = [&](std::int64_t x) {
    if (x == kPosInf) return kPosInf;
    return std::max<std::int64_t>(0, x - offset);
  };
  return Interval{f(mag.lo), f(mag.hi)};
}

Interval interval_clamp(const Interval& a, std::int64_t rail_lo,
                        std::int64_t rail_hi) {
  LDPC_CHECK(rail_lo <= rail_hi);
  if (a.empty()) return a;
  return Interval{std::clamp(a.lo, rail_lo, rail_hi),
                  std::clamp(a.hi, rail_lo, rail_hi)};
}

Sign interval_sign(const Interval& a) {
  if (a.empty()) return Sign::kBottom;
  if (a.lo == 0 && a.hi == 0) return Sign::kZero;
  if (a.lo > 0) return Sign::kPos;
  if (a.hi < 0) return Sign::kNeg;
  if (a.lo == 0) return Sign::kNonNeg;
  if (a.hi == 0) return Sign::kNonPos;
  return Sign::kTop;
}

int required_bits(const Interval& a) {
  if (!a.bounded()) return -1;
  // Smallest w with -(2^(w-1)) <= lo and hi <= 2^(w-1) - 1; the fixed
  // formats floor at 2 bits.
  for (int w = 2; w <= 62; ++w) {
    const std::int64_t rail_hi = (std::int64_t{1} << (w - 1)) - 1;
    const std::int64_t rail_lo = -(std::int64_t{1} << (w - 1));
    if (a.lo >= rail_lo && a.hi <= rail_hi) return w;
  }
  return 63;
}

}  // namespace ldpc
