// Abstract domains for the static value-range verifier.
//
// The verifier (range_verify.hpp) runs an abstract interpretation of the
// layered min-sum datapath: every message site is tracked as an interval
// [lo, hi] of the int64 concrete values the site can carry, paired with a
// sign summary. The transfer functions below mirror the concrete kernel
// arithmetic in util/saturate.hpp / LayerRowKernel exactly — each one is
// the tightest interval extension of the corresponding concrete operation
// on the inputs it can actually receive (monotone operand-wise, so mapping
// the endpoints is sound AND precise; the unit tests brute-force this
// against the concrete functions).
//
// INT64_MIN/MAX act as -inf/+inf so the unbounded quantizer input is
// representable; arithmetic saturates at the sentinels instead of wrapping.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

#include "util/check.hpp"

namespace ldpc {

/// Sign lattice: kBottom < {kZero, kNeg, kPos} < mixed joins < kTop.
enum class Sign : std::uint8_t {
  kBottom,   ///< no value seen yet
  kZero,     ///< exactly 0
  kNeg,      ///< strictly negative
  kPos,      ///< strictly positive
  kNonPos,   ///< <= 0
  kNonNeg,   ///< >= 0
  kNonZero,  ///< != 0
  kTop,      ///< any sign
};

const char* to_string(Sign s);

/// Least upper bound in the sign lattice.
Sign sign_join(Sign a, Sign b);

struct Interval {
  static constexpr std::int64_t kNegInf =
      std::numeric_limits<std::int64_t>::min();
  static constexpr std::int64_t kPosInf =
      std::numeric_limits<std::int64_t>::max();

  std::int64_t lo = 1;  ///< lo > hi encodes the empty interval (bottom)
  std::int64_t hi = 0;

  static constexpr Interval bottom() { return Interval{1, 0}; }
  static constexpr Interval top() { return Interval{kNegInf, kPosInf}; }
  static constexpr Interval point(std::int64_t v) { return Interval{v, v}; }
  static Interval of(std::int64_t lo, std::int64_t hi) {
    LDPC_CHECK(lo <= hi);
    return Interval{lo, hi};
  }

  bool empty() const { return lo > hi; }
  bool is_point() const { return lo == hi; }
  bool bounded() const { return !empty() && lo != kNegInf && hi != kPosInf; }
  bool contains(std::int64_t v) const { return !empty() && lo <= v && v <= hi; }
  bool contains(const Interval& o) const {
    return o.empty() || (!empty() && lo <= o.lo && o.hi <= hi);
  }
  bool operator==(const Interval& o) const {
    return (empty() && o.empty()) || (lo == o.lo && hi == o.hi);
  }

  std::string str() const;
};

/// Saturating int64 helpers (the infinities absorb instead of wrapping).
std::int64_t sat64_add(std::int64_t a, std::int64_t b);
std::int64_t sat64_neg(std::int64_t a);

/// Least upper bound: smallest interval containing both.
Interval interval_join(const Interval& a, const Interval& b);

/// Greatest lower bound (may be empty).
Interval interval_meet(const Interval& a, const Interval& b);

/// Standard interval widening: any bound that grew versus `prev` jumps to
/// its infinity, guaranteeing fixpoint termination on diverging chains.
/// (The datapath's clamps bound every cycle in practice — iteration
/// converges without widening — but the engine still applies this after a
/// fixed iteration budget so termination never depends on that property.)
Interval interval_widen(const Interval& prev, const Interval& next);

// ---- transfer functions (exact extensions of the concrete kernel ops) ----

Interval interval_add(const Interval& a, const Interval& b);
Interval interval_sub(const Interval& a, const Interval& b);
Interval interval_neg(const Interval& a);

/// |x| — the magnitude extraction of CheckState::absorb.
Interval interval_abs(const Interval& a);

/// min(x, y) over all pairs — the min1/min2 running-minimum transfer: the
/// minimum of k >= 1 draws from `a` lies in [a.lo, a.hi], and folding with
/// further operands is exactly this pairwise min.
Interval interval_min(const Interval& a, const Interval& b);

/// ± union: the sign re-application `negative ? -mag : mag` when the sign
/// is unknown — join of the interval and its negation.
Interval interval_plus_minus(const Interval& mag);

/// (x>>1) + (x>>2), truncating per shift — scale_three_quarters on a
/// non-negative magnitude interval.
Interval interval_scale_three_quarters(const Interval& mag);

/// (x * num) / den, truncating — LayerRowKernel's ablation scaling path.
/// Requires a non-negative interval and num, den > 0.
Interval interval_scale_num_den(const Interval& mag, std::int64_t num,
                                std::int64_t den);

/// max(0, x - offset) — the offset-min-sum correction.
Interval interval_offset(const Interval& mag, std::int64_t offset);

/// Clamp into [rail_lo, rail_hi] — sat_clamp's interval image (never empty
/// for a non-empty input: clamping maps outside values onto the rails).
Interval interval_clamp(const Interval& a, std::int64_t rail_lo,
                        std::int64_t rail_hi);

/// Sign summary of an interval.
Sign interval_sign(const Interval& a);

/// Minimal two's-complement width holding every value of `a` (>= 2 by the
/// fixed-format floor), or -1 when the interval is unbounded/empty.
int required_bits(const Interval& a);

}  // namespace ldpc
