// Static value-range / bit-width verifier for the fixed-point layered
// min-sum datapath (the tentpole of docs/static_analysis.md §ranges).
//
// For one (code, message format, scaling mode) combination the verifier
// runs an abstract interpretation of Algorithm 1 over the interval + sign
// domains (range_domain.hpp): starting from the quantizer's rail-bounded
// posterior memory and zeroed check messages, it pushes intervals through
// the exact kernel transfer functions — Q = P - R, |Q|, the min1/min2
// running minimum, the magnitude correction, the sign re-application, the
// R'/P' clamps — joining the memory state across layer passes until a
// fixpoint. The result is, per datapath site:
//
//   wide     the guaranteed bound of the value BEFORE any clamp — what a
//            clamp-free datapath register would have to hold
//   value    the bound after the site's clamp (= wide when proven narrow)
//   proven_unsaturable   wide already fits the format rails: the clamp can
//            never fire, for ANY code and ANY input (the runtime
//            cross-check test asserts the matching SaturationStats counter
//            stays zero)
//   clamp_required       wide exceeds the rails: removing the clamp would
//            corrupt messages; the implementation must keep it
//   min_safe_bits        minimal two's-complement width holding `wide` —
//            the word length at which the site needs no clamp at all
//
// A site is UNSAFE when its value can exceed the rails and the
// implementation has no clamp there; ldpc-verify exits nonzero on any
// unsafe site. The proofs are degree- and code-independent (the min of k
// magnitudes is bounded by the magnitude bound for every k >= 1), so one
// verdict covers every registered code; per-code facts (degree range,
// degenerate rows) are still folded in and reported.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/range_domain.hpp"
#include "codes/qc_code.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "core/quant.hpp"
#include "hls/opgraph.hpp"

namespace ldpc {

/// The magnitude-correction variants LayerRowKernel implements.
enum class ScaleKind : std::uint8_t {
  kThreeQuarters,  ///< (x>>1) + (x>>2), the paper's multiplier-free 0.75
  kNumDen,         ///< truncating x * num / den (ablation sweeps)
  kOffset,         ///< max(x - offset, 0), offset min-sum
};

struct ScalingSpec {
  ScaleKind kind = ScaleKind::kThreeQuarters;
  std::int32_t num = 3;          ///< kNumDen only
  std::int32_t den = 4;          ///< kNumDen only
  std::int32_t offset_code = 0;  ///< kOffset only

  std::string name() const;

  /// The spec a LayerRowKernel actually executes (reads the kernel's
  /// correction parameters so verifier and implementation cannot drift).
  static ScalingSpec from_kernel(const LayerRowKernel& kernel);
};

/// Per-code facts the abstract interpretation consumes.
struct CodeFacts {
  std::string name;
  std::size_t n = 0;
  std::size_t z = 0;
  std::size_t layers = 0;
  std::size_t min_row_degree = 0;  ///< nonzero blocks in the sparsest layer
  std::size_t max_row_degree = 0;
  bool has_degenerate_rows = false;  ///< any layer of degree < 2

  static CodeFacts from_code(const std::string& name, const QCLdpcCode& code);
};

/// The datapath sites the verifier proves bounds for.
enum class RangeSite : std::uint8_t {
  kQuantizer,     ///< channel LLR -> code (unbounded input)
  kQ,             ///< stage 1: Q = P - R
  kMinMagnitude,  ///< |Q| into the min1/min2 state registers
  kScale,         ///< corrected magnitude (pure function, no clamp)
  kRNew,          ///< stage 2: R' after sign re-application
  kPNew,          ///< stage 2: P' = Q + R'
};

inline constexpr std::size_t kNumRangeSites = 6;

const char* to_string(RangeSite site);

struct SiteBound {
  RangeSite site = RangeSite::kQuantizer;
  Interval wide;      ///< pre-clamp fixpoint bound
  Interval value;     ///< post-clamp bound (what downstream sites consume)
  Sign sign = Sign::kBottom;
  bool has_clamp = false;           ///< implementation clamps here
  bool proven_unsaturable = false;  ///< wide fits the rails already
  bool clamp_required = false;      ///< wide exceeds the rails
  int min_safe_bits = -1;           ///< width making the site clamp-free
  int implemented_bits = 0;         ///< format.total_bits

  /// Unsafe = can exceed the rails with nothing there to catch it.
  bool safe() const { return proven_unsaturable || has_clamp; }
};

/// Verdict for one (code, format, scaling) combination.
struct RangeReport {
  CodeFacts code;
  FixedFormat format;
  ScalingSpec scaling;
  std::vector<SiteBound> sites;  ///< kNumRangeSites entries, enum order
  int iterations_to_fixpoint = 0;
  bool widening_applied = false;

  const SiteBound& site(RangeSite s) const {
    return sites[static_cast<std::size_t>(s)];
  }
  bool all_safe() const;
};

/// Run the abstract interpretation. `kernel` supplies the format and the
/// correction parameters (build one exactly like the decoder under audit).
RangeReport verify_ranges(const CodeFacts& facts, const LayerRowKernel& kernel);

/// Convenience: spec-driven entry (constructs the matching kernel).
RangeReport verify_ranges(const CodeFacts& facts, FixedFormat format,
                          const ScalingSpec& scaling);

/// One finding of the op-graph width audit: a labelled node of the HLS
/// core1/core2 graphs checked against the verifier's proven bounds.
struct OpWidthFinding {
  std::string node;        ///< op-graph label, e.g. "Q=P-R"
  int declared_bits = 0;   ///< width the HLS graph instantiates
  int required_bits = 0;   ///< width the proven post-clamp bound needs
  int clamp_free_bits = 0; ///< width the pre-clamp bound would need
  bool ok = false;         ///< declared width holds the post-clamp bound
  std::string detail;
};

/// Map the report's bounds onto the PICO core1/core2 op-graph widths: every
/// datapath register must hold its site's post-clamp interval. (Magnitude
/// registers are unsigned in hardware; the audit accounts for the sign bit
/// the two's-complement bound includes.)
std::vector<OpWidthFinding> audit_opgraph_widths(const RangeReport& report,
                                                 const OpGraph& core1,
                                                 const OpGraph& core2);

/// Serialize reports (plus their op-graph audits) as a JSON document — the
/// artifact scripts/check.sh archives.
std::string range_reports_json(const std::vector<RangeReport>& reports);

}  // namespace ldpc
