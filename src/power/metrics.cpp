#include "power/metrics.hpp"

#include "util/check.hpp"

namespace ldpc {

double latency_us(long long cycles, double clock_mhz) {
  LDPC_CHECK(clock_mhz > 0.0);
  return static_cast<double>(cycles) / clock_mhz;
}

double info_throughput_mbps(std::size_t info_bits, long long cycles_per_frame,
                            double clock_mhz) {
  LDPC_CHECK(cycles_per_frame > 0);
  return static_cast<double>(info_bits) * clock_mhz /
         static_cast<double>(cycles_per_frame);
}

double coded_throughput_mbps(std::size_t coded_bits, long long cycles_per_frame,
                             double clock_mhz) {
  LDPC_CHECK(cycles_per_frame > 0);
  return static_cast<double>(coded_bits) * clock_mhz /
         static_cast<double>(cycles_per_frame);
}

double energy_per_bit_pj(double power_mw, double throughput_mbps) {
  LDPC_CHECK(throughput_mbps > 0.0);
  // mW / Mbps = nJ/bit; convert to pJ/bit.
  return power_mw / throughput_mbps * 1000.0;
}

}  // namespace ldpc
