// Gate-level-style power model (the SpyGlass substitute, see DESIGN.md).
//
// Reproduces the paper's Table I decomposition:
//   leakage   — area-proportional, activity independent;
//   internal  — sequential/clock power: every flip-flop that receives a
//               clock edge costs ff_clock_fj. Without gating all registers
//               clock every cycle; with PICO's idle-register and block-level
//               gating only the busy blocks' registers do (plus an
//               ungateable root fraction);
//   switching — datapath toggling, priced per simulated operation from the
//               architecture simulator's activity counters.
#pragma once

#include "arch/activity.hpp"
#include "hls/pico.hpp"
#include "power/area_model.hpp"
#include "power/tech65nm.hpp"

namespace ldpc {

struct PowerBreakdown {
  double leakage_mw = 0.0;
  double internal_mw = 0.0;   ///< sequential internal power (Table I column)
  double switching_mw = 0.0;
  double total_mw = 0.0;      ///< std cells only (the Table I "Total")
  double sram_mw = 0.0;       ///< P/R macro access power
  double total_with_sram_mw = 0.0;  ///< whole core (Table II power basis)
};

class PowerModel {
 public:
  explicit PowerModel(const Tech65nm& tech = tech65nm()) : tech_(tech) {}

  /// Power during sustained decoding at `hw.clock_mhz`, given the measured
  /// activity of a representative decode. `std_cell_area_mm2` should come
  /// from AreaModel (leakage excludes the external SRAMs, as in Table I).
  PowerBreakdown estimate(const HardwareEstimate& hw,
                          const ActivityCounters& activity,
                          double std_cell_area_mm2, bool clock_gating) const;

 private:
  Tech65nm tech_;
};

}  // namespace ldpc
