// TSMC 65 nm LP technology coefficients used by the area and power models.
//
// These are calibration constants, not library data: they were chosen so a
// decoder with the paper's structure (z = 96 lanes, ~15-30 k register bits,
// ~83 kb of SRAM) lands at the paper's reported design points — 0.45 mm² of
// standard cells + ~0.75 mm² of SRAM ≈ 1.2 mm² core at 400 MHz, 180 mW peak
// — while every *relative* result (per-layer vs pipelined, gated vs
// ungated, area vs frequency) is produced by structure and simulated
// activity, not by the constants. See DESIGN.md §2.
#pragma once

namespace ldpc {

struct Tech65nm {
  // --- Area -----------------------------------------------------------------
  /// Flip-flop area including local clock buffering (um^2 per bit).
  double ff_area_um2 = 5.2;
  /// Multiplier covering PICO-generated control: sequencers, address
  /// generators, operand steering muxes (applied to datapath comb area).
  double control_overhead_per_layer = 2.0;
  /// The pipelined architecture adds conflict detection (scoreboard checks)
  /// and FIFO control.
  double control_overhead_pipelined = 2.5;
  /// Synthesis timing pressure: cells are upsized as the target period
  /// approaches the critical path. area *= 1 + pressure * (f/f_ref)^2.
  double timing_pressure = 0.9;
  double pressure_ref_mhz = 400.0;
  /// Single-port SRAM macro density including periphery (um^2 per bit) for
  /// the small, wide macros the decoder uses (768-bit words).
  double sram_area_um2_per_bit = 8.5;

  // --- Power ----------------------------------------------------------------
  /// Std-cell leakage density at the 0.9 V low-leakage corner (mW per mm^2).
  double leakage_mw_per_mm2 = 8.6;
  /// Clock energy per flip-flop bit per clock edge (fJ): FF clock pin plus
  /// its share of the local clock tree. This is the component clock gating
  /// removes for idle cycles.
  double ff_clock_fj = 10.0;
  /// Fraction of the internal (sequential) power that cannot be gated:
  /// root clock spine, integrated clock-gating cells, FF internal (data)
  /// component, always-on control.
  double ungateable_fraction = 0.33;
  /// SRAM macro access energies (pJ per word access, 768-bit words).
  double sram_read_pj = 18.0;
  double sram_write_pj = 14.0;
  /// Switching energy per core-1 lane operation (pJ): Q subtraction,
  /// magnitude compare tree, state update.
  double core1_op_pj = 0.48;
  /// Switching energy per core-2 lane operation (pJ).
  double core2_op_pj = 0.42;
  /// Switching energy per full-width barrel rotation (pJ, all z lanes).
  double shifter_rotate_pj = 6.0;
  /// Register-file lane update energy (pJ per lane write, data pins only —
  /// the clock component is counted under internal power).
  double regfile_write_pj = 0.05;
};

/// The default calibrated technology instance.
inline const Tech65nm& tech65nm() {
  static const Tech65nm t{};
  return t;
}

}  // namespace ldpc
