// Area model: PICO hardware estimate -> silicon area (65 nm).
//
// Splits area the way the paper reports it: Fig. 8b plots standard cells
// only ("a fair comparison because two architectures would require the same
// amount of external SRAMs"); Table II's 1.2 mm^2 core area includes the
// SRAM macros.
#pragma once

#include "hls/pico.hpp"
#include "power/tech65nm.hpp"

namespace ldpc {

struct AreaBreakdown {
  double datapath_mm2 = 0.0;   ///< core1/core2 instances incl. control share
  double shifter_mm2 = 0.0;
  double registers_mm2 = 0.0;  ///< pipeline + architectural flip-flops
  double std_cells_mm2 = 0.0;  ///< sum of the above (the Fig. 8b quantity)
  double sram_mm2 = 0.0;       ///< P + R macros
  double core_mm2 = 0.0;       ///< std cells + SRAM (the Table II quantity)
};

class AreaModel {
 public:
  explicit AreaModel(const Tech65nm& tech = tech65nm()) : tech_(tech) {}

  /// `sram_bits` = P memory + R memory capacity for the supported code(s).
  AreaBreakdown estimate(const HardwareEstimate& hw, long long sram_bits) const;

 private:
  Tech65nm tech_;
};

}  // namespace ldpc
