// Throughput / latency / efficiency calculators for the Table II metrics.
#pragma once

#include <cstddef>

namespace ldpc {

/// Decode latency in microseconds.
double latency_us(long long cycles, double clock_mhz);

/// Information throughput in Mbps: k info bits delivered per frame latency.
/// (Table II's 415 Mbps at R = 1/2 is information throughput: 1152 bits in
/// ~2.8 us.)
double info_throughput_mbps(std::size_t info_bits, long long cycles_per_frame,
                            double clock_mhz);

/// Coded throughput in Mbps (n bits per frame).
double coded_throughput_mbps(std::size_t coded_bits, long long cycles_per_frame,
                             double clock_mhz);

/// Energy efficiency in pJ per decoded information bit.
double energy_per_bit_pj(double power_mw, double throughput_mbps);

}  // namespace ldpc
