#include "power/message_memory.hpp"

#include "util/check.hpp"

namespace ldpc {

namespace {

struct Widths {
  int p_bits;
  int r_bits;
};

Widths widths_for(const std::string& format) {
  if (format == "float") return {32, 32};
  if (format == "q8.2") return {8, 8};
  if (format == "q6.1") return {6, 6};
  // Finite-alphabet family: 8-bit posterior, sign-magnitude messages at
  // the family's resolution (fa4 = sign + 3 magnitude bits, etc.).
  if (format == "fa4") return {8, 4};
  if (format == "fa3") return {8, 3};
  if (format == "fa2") return {8, 2};
  if (format == "bit") return {1, 1};
  throw Error("message_memory_profile: unknown message format: " + format);
}

}  // namespace

MessageMemoryProfile message_memory_profile(const QCLdpcCode& code,
                                            const std::string& format) {
  const Widths w = widths_for(format);
  MessageMemoryProfile prof;
  prof.format = format;
  prof.p_bits = w.p_bits;
  prof.r_bits = w.r_bits;
  const long long edges = static_cast<long long>(
      code.base().nonzero_blocks() * static_cast<std::size_t>(code.z()));
  prof.p_memory_bits = static_cast<long long>(code.n()) * w.p_bits;
  prof.r_memory_bits = edges * w.r_bits;
  prof.total_bits = prof.p_memory_bits + prof.r_memory_bits;
  return prof;
}

double MessageMemoryProfile::reduction_vs_q8(const QCLdpcCode& code) const {
  const MessageMemoryProfile base = message_memory_profile(code, "q8.2");
  return static_cast<double>(total_bits) /
         static_cast<double>(base.total_bits);
}

}  // namespace ldpc
