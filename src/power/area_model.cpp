#include "power/area_model.hpp"

namespace ldpc {

AreaBreakdown AreaModel::estimate(const HardwareEstimate& hw,
                                  long long sram_bits) const {
  constexpr double kUm2PerMm2 = 1.0e6;

  const double control = hw.arch == ArchKind::kTwoLayerPipelined
                             ? tech_.control_overhead_pipelined
                             : tech_.control_overhead_per_layer;
  const double f_ratio = hw.clock_mhz / tech_.pressure_ref_mhz;
  const double pressure = 1.0 + tech_.timing_pressure * f_ratio * f_ratio;

  AreaBreakdown a;
  a.datapath_mm2 = hw.datapath_area_um2 * control * pressure / kUm2PerMm2;
  a.shifter_mm2 = hw.shifter_area_um2 * pressure / kUm2PerMm2;
  a.registers_mm2 =
      static_cast<double>(hw.total_reg_bits()) * tech_.ff_area_um2 / kUm2PerMm2;
  a.std_cells_mm2 = a.datapath_mm2 + a.shifter_mm2 + a.registers_mm2;
  a.sram_mm2 =
      static_cast<double>(sram_bits) * tech_.sram_area_um2_per_bit / kUm2PerMm2;
  a.core_mm2 = a.std_cells_mm2 + a.sram_mm2;
  return a;
}

}  // namespace ldpc
