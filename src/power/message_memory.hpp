// Message-memory sizing across decoder message formats.
//
// The paper's scalability lever is P/R memory: posterior (P) words are one
// per variable node, check-message (R) words one per edge (nonzero base
// block x z rows), and both scale linearly with word width. The
// finite-alphabet family narrows R to the message resolution (sign +
// log2(levels) bits) while keeping the 8-bit posterior, so the dominant
// R macro shrinks by up to 4x against the q8.2 baseline — this module
// turns a (code, format) pair into exact bit capacities so the area/power
// models and the energy benches can price that reduction.
#pragma once

#include <string>

#include "codes/qc_code.hpp"

namespace ldpc {

/// Per-site message word widths of one decoder family, plus the derived
/// P/R capacities for a concrete code.
struct MessageMemoryProfile {
  std::string format;  ///< message_format() naming: "float", "q8.2", "fa4"...
  int p_bits = 0;      ///< posterior word width
  int r_bits = 0;      ///< check-message word width
  long long p_memory_bits = 0;  ///< n * p_bits
  long long r_memory_bits = 0;  ///< nonzero_blocks * z * r_bits
  long long total_bits = 0;

  /// Fraction of the q8.2 baseline's total message bits this profile
  /// needs (1.0 = no saving; fa4 on WiMAX rate-1/2 is ~0.56).
  double reduction_vs_q8(const QCLdpcCode& code) const;
};

/// Profile for a message_format() string as reported by the decoder
/// registry: "float" (32/32), "q8.2" (8/8), "q6.1" (6/6), "fa4" (8/4),
/// "fa3" (8/3), "fa2" (8/2), "bit" (1/1). Throws ldpc::Error on formats
/// it cannot price.
MessageMemoryProfile message_memory_profile(const QCLdpcCode& code,
                                            const std::string& format);

}  // namespace ldpc
