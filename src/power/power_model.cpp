#include "power/power_model.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ldpc {

PowerBreakdown PowerModel::estimate(const HardwareEstimate& hw,
                                    const ActivityCounters& activity,
                                    double std_cell_area_mm2,
                                    bool clock_gating) const {
  LDPC_CHECK(activity.cycles > 0);
  const double f_hz = hw.clock_mhz * 1.0e6;
  const double cycles = static_cast<double>(activity.cycles);
  const double seconds = cycles / f_hz;

  PowerBreakdown p;
  p.leakage_mw = std_cell_area_mm2 * tech_.leakage_mw_per_mm2;

  // --- Internal (sequential) power ------------------------------------------
  // Bit-cycles: how many flip-flop bits receive a clock edge, summed over the
  // decode. Without gating every register clocks every cycle. With PICO's
  // idle-register + block-level gating each register class clocks only when
  // the simulator says it is written:
  //   core1 state arrays — one lane-update per absorbed Q message;
  //   core2 state copies — one full-array snapshot per layer handoff;
  //   Q FIFO             — one entry write per push;
  //   pipeline registers — every cycle their core is busy;
  //   scoreboard/control — effectively always on.
  const double total_bits = static_cast<double>(hw.total_reg_bits());
  double clocked_bit_cycles;
  if (!clock_gating) {
    clocked_bit_cycles = total_bits * cycles;
  } else {
    const double gated =
        static_cast<double>(activity.min_array_updates) *
            hw.state_bits_per_lane() +
        static_cast<double>(activity.layer_snapshots) *
            static_cast<double>(hw.reg_bits_state_core2) +
        static_cast<double>(activity.q_fifo_pushes) *
            static_cast<double>(hw.q_entry_bits()) +
        static_cast<double>(hw.reg_bits_pipe_core1) *
            static_cast<double>(activity.core1_busy_cycles) +
        static_cast<double>(hw.reg_bits_pipe_core2) *
            static_cast<double>(activity.core2_busy_cycles) +
        static_cast<double>(hw.reg_bits_other) * cycles;
    // Root clock spine, ICG cells and FF internal (non-clock) power do not
    // scale with gating.
    const double floor = tech_.ungateable_fraction * total_bits * cycles;
    clocked_bit_cycles = std::min(total_bits * cycles, gated + floor);
  }
  const double internal_j = clocked_bit_cycles * tech_.ff_clock_fj * 1.0e-15;
  p.internal_mw = internal_j / seconds * 1.0e3;

  // --- Switching power (combinational, std cells only) -----------------------
  const double lane_factor = static_cast<double>(hw.parallelism);
  const double switching_j =
      (static_cast<double>(activity.core1_issue_beats) * lane_factor *
           tech_.core1_op_pj +
       static_cast<double>(activity.core2_issue_beats) * lane_factor *
           tech_.core2_op_pj +
       static_cast<double>(activity.shifter_rotates) * tech_.shifter_rotate_pj +
       static_cast<double>(activity.min_array_updates) * tech_.regfile_write_pj) *
      1.0e-12;
  p.switching_mw = switching_j / seconds * 1.0e3;

  // --- SRAM macro access power (reported separately: the paper's Table I
  // SpyGlass numbers exclude the external SRAMs, Table II's peak includes
  // the whole core) ------------------------------------------------------------
  const double sram_j =
      (static_cast<double>(activity.p_reads + activity.r_reads) *
           tech_.sram_read_pj +
       static_cast<double>(activity.p_writes + activity.r_writes) *
           tech_.sram_write_pj) *
      1.0e-12;
  p.sram_mw = sram_j / seconds * 1.0e3;

  p.total_mw = p.leakage_mw + p.internal_mw + p.switching_mw;
  p.total_with_sram_mw = p.total_mw + p.sram_mw;
  return p;
}

}  // namespace ldpc
